"""Bounded object-identity memoization for repeated stage inputs.

The content-addressed :class:`~repro.perf.tensor_cache.TensorCache`
deduplicates by *bytes*; this module deduplicates by *object identity*,
which is cheaper still — no digesting, no key building.  The motivating
consumer is ``MoEBlock.ffn_normed``: the gate and every routed expert of
a block step normalize the same post-attention array, so the same object
recurs several times in quick succession.  A one-slot memo covers that
for solo execution, but gathered cross-sequence rounds interleave many
sequences' arrays through one block, evicting a single slot almost every
call (BENCH_compute measured a 3.3% ffn_norm stage hit rate against
84–93% for the digest-keyed stages).  A small LRU keyed by ``id()``
keeps every in-flight sequence's entry live at once.

Entries hold strong references to their input arrays, which is what
makes ``id()`` a safe key: a memoized input cannot be garbage collected
(so its id cannot be reused) while its entry lives.  Values are returned
exactly as stored, so a memo hit is bitwise-identical to the compute or
cache lookup it replaced.
"""

from __future__ import annotations

from collections import OrderedDict


class IdentityLRUMemo:
    """LRU memo keyed by input-object identity.

    Args:
        capacity: bound on live entries (>= 1); least-recently-used
            entries (and their strong input references) are dropped
            past it.
        counters: optional
            :class:`~repro.perf.tensor_cache.StageCounters` credited
            one ``memo_hits`` per memo hit.  Misses are *not* counted
            here — a miss falls through to the content-addressed
            cache, which tallies its own lookup — so a stage's hit
            rate reflects both memo and cache hits over all stage
            calls while the cache's own hit/miss tallies stay pure.
    """

    def __init__(self, capacity: int = 16, counters=None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.counters = counters
        # id(input) -> (input, value); insertion order == recency order.
        self._entries: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, arr):
        """Return the memoized value for ``arr`` (the very object), or
        ``None``; a hit refreshes recency and credits the counters."""
        entry = self._entries.get(id(arr))
        if entry is None or entry[0] is not arr:
            return None
        self._entries.move_to_end(id(arr))
        if self.counters is not None:
            self.counters.memo_hits += 1
        return entry[1]

    def put(self, arr, value):
        """Memoize ``value`` for the object ``arr``; returns ``value``."""
        key = id(arr)
        self._entries.pop(key, None)
        self._entries[key] = (arr, value)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return value

    def clear(self) -> None:
        """Drop every entry (and its input reference)."""
        self._entries.clear()
