"""Token sampling strategies for decode."""

from __future__ import annotations

import numpy as np

from repro.model.layers import softmax


def greedy(logits: np.ndarray) -> int:
    """Deterministic argmax sampling."""
    return int(np.argmax(np.asarray(logits).ravel()))


def top_k_sample(logits: np.ndarray, k: int, rng: np.random.Generator,
                 temperature: float = 1.0) -> int:
    """Sample from the ``k`` highest-probability tokens."""
    logits = np.asarray(logits, dtype=np.float64).ravel()
    if k < 1:
        raise ValueError("k must be positive")
    if temperature <= 0:
        return greedy(logits)
    k = min(k, logits.size)
    top = np.argpartition(-logits, k - 1)[:k]
    probs = softmax(logits[top] / temperature)
    return int(rng.choice(top, p=probs))
