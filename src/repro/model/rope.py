"""Rotary positional embeddings (RoPE) for the functional model."""

from __future__ import annotations

import numpy as np


class RotaryEmbedding:
    """Precomputes and applies rotary position embeddings.

    The cache grows lazily as longer positions are requested, so a single
    instance can serve arbitrarily long generations.
    """

    def __init__(self, head_dim: int, base: float = 10000.0) -> None:
        if head_dim % 2 != 0:
            raise ValueError("head_dim must be even for RoPE")
        self.head_dim = head_dim
        self.base = base
        self._cos = np.zeros((0, head_dim // 2), dtype=np.float32)
        self._sin = np.zeros((0, head_dim // 2), dtype=np.float32)
        inv_freq = 1.0 / (base ** (np.arange(0, head_dim, 2) / head_dim))
        self._inv_freq = inv_freq.astype(np.float32)

    def _ensure(self, max_pos: int) -> None:
        if self._cos.shape[0] >= max_pos:
            return
        positions = np.arange(max_pos, dtype=np.float32)
        angles = np.outer(positions, self._inv_freq)
        self._cos = np.cos(angles).astype(np.float32)
        self._sin = np.sin(angles).astype(np.float32)

    def apply(self, x: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Rotate ``x`` of shape ``(..., n_tokens, head_dim)`` by position.

        ``positions`` is a 1-D integer array of length ``n_tokens``.
        """
        positions = np.asarray(positions)
        self._ensure(int(positions.max()) + 1)
        cos = self._cos[positions]
        sin = self._sin[positions]
        x1 = x[..., 0::2]
        x2 = x[..., 1::2]
        out = np.empty_like(x)
        out[..., 0::2] = x1 * cos - x2 * sin
        out[..., 1::2] = x1 * sin + x2 * cos
        return out
