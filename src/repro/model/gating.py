"""Top-k expert routing (the MoE gating function)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.layers import Linear, softmax


@dataclass
class RoutingDecision:
    """Routing of a batch of tokens to experts.

    Attributes:
        logits: raw router logits, shape ``(n_tokens, n_experts)``.
        experts: selected expert indices, shape ``(n_tokens, top_k)``,
            sorted by descending logit.
        weights: mixing weights (softmax over the selected logits),
            shape ``(n_tokens, top_k)``.
    """

    logits: np.ndarray
    experts: np.ndarray
    weights: np.ndarray

    @property
    def n_tokens(self) -> int:
        """Number of routed tokens."""
        return self.logits.shape[0]

    @property
    def top_k(self) -> int:
        """Number of experts activated per token."""
        return self.experts.shape[1]


class Router:
    """Linear gating function producing top-k expert selections."""

    def __init__(self, d_model: int, n_experts: int, top_k: int,
                 rng: np.random.Generator) -> None:
        if not 0 < top_k <= n_experts:
            raise ValueError("top_k must be in (0, n_experts]")
        self.gate = Linear(d_model, n_experts, rng)
        self.n_experts = n_experts
        self.top_k = top_k

    def logits(self, x: np.ndarray) -> np.ndarray:
        """Raw router logits for hidden states ``x``."""
        return self.gate(x)

    def route(self, x: np.ndarray) -> RoutingDecision:
        """Full top-k routing decision for hidden states ``x``."""
        logits = self.logits(np.atleast_2d(x))
        return self.route_from_logits(logits)

    def route_from_logits(self, logits: np.ndarray) -> RoutingDecision:
        """Select top-k experts and mixing weights from precomputed logits."""
        logits = np.atleast_2d(logits)
        order = np.argsort(-logits, axis=-1, kind="stable")
        experts = order[:, : self.top_k]
        selected = np.take_along_axis(logits, experts, axis=-1)
        weights = softmax(selected, axis=-1)
        return RoutingDecision(logits=logits, experts=experts, weights=weights)

    @staticmethod
    def renormalize(logits_row: np.ndarray, experts: np.ndarray) -> np.ndarray:
        """Mixing weights for an arbitrary expert subset of one token.

        Used when the executed expert set deviates from the argmax set
        (graceful degradation): the weights are the softmax over the chosen
        experts' logits, mirroring Mixtral's top-k renormalization.
        """
        chosen = logits_row[experts]
        return softmax(chosen, axis=-1)

    @property
    def n_params(self) -> int:
        """Number of parameters in the gate."""
        return self.gate.n_params
