"""The functional decoder-only MoE transformer.

This is a real (if scaled-down) numpy transformer: embeddings, rotary
grouped-query attention with KV caches, top-k expert routing, SwiGLU
experts, RMSNorm, and a weight-tied LM head.  Inference engines drive the
per-block stages directly; :meth:`MoETransformer.forward_exact` gives the
reference end-to-end path used as the accuracy oracle.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.model.attention import KVCache
from repro.model.config import ModelProfile
from repro.model.gating import RoutingDecision
from repro.model.layers import RMSNorm, log_softmax
from repro.model.moe_block import MoEBlock


class MoETransformer:
    """Decoder-only mixture-of-experts language model."""

    def __init__(self, profile: ModelProfile,
                 embedding: np.ndarray | None = None) -> None:
        self.profile = profile
        sim = profile.sim
        rng = np.random.default_rng(profile.seed)
        if embedding is None:
            embedding = rng.standard_normal(
                (sim.vocab_size, sim.d_model)
            ).astype(np.float32)
        if embedding.shape != (sim.vocab_size, sim.d_model):
            raise ValueError("embedding shape must be (vocab_size, d_model)")
        self.embedding = embedding.astype(np.float32)
        self.blocks = [
            MoEBlock(sim, profile.n_experts, profile.top_k, rng, block_idx=i)
            for i in range(profile.n_blocks)
        ]
        self.final_norm = RMSNorm(sim.d_model)
        # Content-addressed compute cache (duck-typed repro.perf.TensorCache);
        # None means every stage computes directly.
        self.compute_cache = None
        self._weights_fingerprint: str | None = None

    # ---- compute-cache plumbing ----------------------------------------------

    def weights_fingerprint(self) -> str:
        """Hex digest over every functional weight array of the model.

        Used as the compute-cache key namespace, so two models (or one
        model before/after in-place weight mutation) can never alias
        cache entries.  Computed lazily and memoized;
        :meth:`invalidate_weights_fingerprint` forces a re-hash.
        """
        if self._weights_fingerprint is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(np.ascontiguousarray(self.embedding).tobytes())
            for block in self.blocks:
                for array in block.weight_arrays():
                    digest.update(np.ascontiguousarray(array).tobytes())
            digest.update(np.ascontiguousarray(self.final_norm.gain).tobytes())
            self._weights_fingerprint = digest.hexdigest()
        return self._weights_fingerprint

    def attach_compute_cache(self, cache) -> None:
        """Route every block stage and the LM head through ``cache``.

        ``cache`` is duck-typed (``key``/``get``/``put`` — normally a
        ``repro.perf.TensorCache``) so the model layer never imports the
        perf package.  Keys are namespaced by :meth:`weights_fingerprint`.
        """
        scope = self.weights_fingerprint()
        self.compute_cache = cache
        for block in self.blocks:
            block.set_compute_cache(cache, scope)

    def detach_compute_cache(self) -> None:
        """Restore direct (uncached) computation on every stage."""
        self.compute_cache = None
        for block in self.blocks:
            block.set_compute_cache(None, None)

    def invalidate_weights_fingerprint(self) -> None:
        """Re-hash the weights after an in-place mutation (quantization).

        If a compute cache is attached it is re-attached under the new
        fingerprint, so stale entries keyed on the old weights can never
        be returned for the mutated model.
        """
        self._weights_fingerprint = None
        if self.compute_cache is not None:
            self.attach_compute_cache(self.compute_cache)

    # ---- component access ----------------------------------------------------

    @property
    def n_blocks(self) -> int:
        """Number of transformer blocks."""
        return len(self.blocks)

    @property
    def n_experts(self) -> int:
        """Experts per block."""
        return self.profile.n_experts

    @property
    def top_k(self) -> int:
        """Experts activated per token."""
        return self.profile.top_k

    def new_caches(self) -> list[KVCache]:
        """Fresh per-block KV caches for a new sequence."""
        return [block.attention.new_cache() for block in self.blocks]

    def embed(self, tokens: np.ndarray) -> np.ndarray:
        """Token embeddings, shape ``(n_tokens, d_model)``."""
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.size and (tokens.min() < 0
                            or tokens.max() >= self.embedding.shape[0]):
            raise ValueError("token id out of vocabulary range")
        return self.embedding[tokens]

    def lm_logits(self, h: np.ndarray) -> np.ndarray:
        """Weight-tied LM head logits from final hidden states."""
        h = np.atleast_2d(h)
        cache = self.compute_cache
        if cache is None:
            return self.final_norm(h) @ self.embedding.T
        key = cache.key(self.weights_fingerprint(), "lm_head", h)
        logits = cache.get(key, "lm_head")
        if logits is None:
            logits = cache.put(
                key, "lm_head", self.final_norm(h) @ self.embedding.T
            )
        return logits

    def lm_logits_rows(self, rows) -> list:
        """Row-stable gathered LM head: one logits row per hidden row.

        ``rows`` is a sequence of ``(d,)`` last-token hidden states, one
        per in-flight sequence.  Functionally this is the batched
        ``[batch, d]`` LM-head matmul of a gathered decode step, but it
        is evaluated row-by-row because BLAS GEMM reductions are not
        row-wise bitwise stable — per-row evaluation keeps every
        sequence's logits (and compute-cache keys) identical to its solo
        :meth:`lm_logits` call, so sampling cannot diverge under
        batching.  The gathered kernel's simulated cost is charged by
        the engine's cost model.
        """
        return [self.lm_logits(row.reshape(1, -1))[0] for row in rows]

    def lm_log_probs(self, h: np.ndarray) -> np.ndarray:
        """Log-probabilities over the vocabulary."""
        return log_softmax(self.lm_logits(h), axis=-1)

    # ---- reference forward ----------------------------------------------------

    def forward_exact(
        self,
        tokens: np.ndarray,
        caches: list[KVCache] | None = None,
        start_pos: int = 0,
    ) -> tuple[np.ndarray, list[RoutingDecision]]:
        """Exact forward pass over ``tokens``.

        Returns the final-layer hidden states and the per-block routing
        decisions.  If ``caches`` is given the tokens extend those caches
        (decode); otherwise fresh caches are used (single-shot prefill).
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        if caches is None:
            caches = self.new_caches()
        positions = start_pos + np.arange(tokens.shape[0])
        h = self.embed(tokens)
        decisions: list[RoutingDecision] = []
        for block, cache in zip(self.blocks, caches):
            h_att = block.attention_part(h, cache, positions)
            decision = block.route(h_att)
            outs = np.empty(
                (h_att.shape[0], self.top_k, self.profile.sim.d_model),
                dtype=np.float32,
            )
            for expert_idx in np.unique(decision.experts):
                mask = decision.experts == expert_idx
                token_idx = np.nonzero(mask.any(axis=1))[0]
                out = block.expert_forward(
                    int(expert_idx), h_att, token_idx=token_idx
                )
                for row, t in enumerate(token_idx):
                    slot = int(np.nonzero(mask[t])[0][0])
                    outs[t, slot] = out[row]
            h = block.combine(h_att, outs, decision.weights)
            decisions.append(decision)
        return h, decisions

    def greedy_generate(self, prompt: np.ndarray,
                        max_new_tokens: int) -> np.ndarray:
        """Reference greedy decoding (exact math, no placement effects)."""
        caches = self.new_caches()
        h, _ = self.forward_exact(np.asarray(prompt), caches)
        generated: list[int] = []
        pos = len(prompt)
        next_token = int(np.argmax(self.lm_logits(h[-1:])[0]))
        for _ in range(max_new_tokens):
            generated.append(next_token)
            h, _ = self.forward_exact(
                np.asarray([next_token]), caches, start_pos=pos
            )
            pos += 1
            next_token = int(np.argmax(self.lm_logits(h[-1:])[0]))
        return np.asarray(generated, dtype=np.int64)

    @property
    def n_params(self) -> int:
        """Functional parameter count (not the paper-scale count)."""
        return (
            self.embedding.size
            + sum(block.n_params for block in self.blocks)
            + self.final_norm.n_params
        )
