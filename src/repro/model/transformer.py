"""The functional decoder-only MoE transformer.

This is a real (if scaled-down) numpy transformer: embeddings, rotary
grouped-query attention with KV caches, top-k expert routing, SwiGLU
experts, RMSNorm, and a weight-tied LM head.  Inference engines drive the
per-block stages directly; :meth:`MoETransformer.forward_exact` gives the
reference end-to-end path used as the accuracy oracle.
"""

from __future__ import annotations

import numpy as np

from repro.model.attention import KVCache
from repro.model.config import ModelProfile
from repro.model.gating import RoutingDecision
from repro.model.layers import RMSNorm, log_softmax
from repro.model.moe_block import MoEBlock


class MoETransformer:
    """Decoder-only mixture-of-experts language model."""

    def __init__(self, profile: ModelProfile,
                 embedding: np.ndarray | None = None) -> None:
        self.profile = profile
        sim = profile.sim
        rng = np.random.default_rng(profile.seed)
        if embedding is None:
            embedding = rng.standard_normal(
                (sim.vocab_size, sim.d_model)
            ).astype(np.float32)
        if embedding.shape != (sim.vocab_size, sim.d_model):
            raise ValueError("embedding shape must be (vocab_size, d_model)")
        self.embedding = embedding.astype(np.float32)
        self.blocks = [
            MoEBlock(sim, profile.n_experts, profile.top_k, rng, block_idx=i)
            for i in range(profile.n_blocks)
        ]
        self.final_norm = RMSNorm(sim.d_model)

    # ---- component access ----------------------------------------------------

    @property
    def n_blocks(self) -> int:
        """Number of transformer blocks."""
        return len(self.blocks)

    @property
    def n_experts(self) -> int:
        """Experts per block."""
        return self.profile.n_experts

    @property
    def top_k(self) -> int:
        """Experts activated per token."""
        return self.profile.top_k

    def new_caches(self) -> list[KVCache]:
        """Fresh per-block KV caches for a new sequence."""
        return [block.attention.new_cache() for block in self.blocks]

    def embed(self, tokens: np.ndarray) -> np.ndarray:
        """Token embeddings, shape ``(n_tokens, d_model)``."""
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.size and (tokens.min() < 0
                            or tokens.max() >= self.embedding.shape[0]):
            raise ValueError("token id out of vocabulary range")
        return self.embedding[tokens]

    def lm_logits(self, h: np.ndarray) -> np.ndarray:
        """Weight-tied LM head logits from final hidden states."""
        return self.final_norm(np.atleast_2d(h)) @ self.embedding.T

    def lm_log_probs(self, h: np.ndarray) -> np.ndarray:
        """Log-probabilities over the vocabulary."""
        return log_softmax(self.lm_logits(h), axis=-1)

    # ---- reference forward ----------------------------------------------------

    def forward_exact(
        self,
        tokens: np.ndarray,
        caches: list[KVCache] | None = None,
        start_pos: int = 0,
    ) -> tuple[np.ndarray, list[RoutingDecision]]:
        """Exact forward pass over ``tokens``.

        Returns the final-layer hidden states and the per-block routing
        decisions.  If ``caches`` is given the tokens extend those caches
        (decode); otherwise fresh caches are used (single-shot prefill).
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        if caches is None:
            caches = self.new_caches()
        positions = start_pos + np.arange(tokens.shape[0])
        h = self.embed(tokens)
        decisions: list[RoutingDecision] = []
        for block, cache in zip(self.blocks, caches):
            h_att = block.attention_part(h, cache, positions)
            decision = block.route(h_att)
            outs = np.empty(
                (h_att.shape[0], self.top_k, self.profile.sim.d_model),
                dtype=np.float32,
            )
            for expert_idx in np.unique(decision.experts):
                mask = decision.experts == expert_idx
                token_idx = np.nonzero(mask.any(axis=1))[0]
                out = block.expert_forward(int(expert_idx), h_att[token_idx])
                for row, t in enumerate(token_idx):
                    slot = int(np.nonzero(mask[t])[0][0])
                    outs[t, slot] = out[row]
            h = block.combine(h_att, outs, decision.weights)
            decisions.append(decision)
        return h, decisions

    def greedy_generate(self, prompt: np.ndarray,
                        max_new_tokens: int) -> np.ndarray:
        """Reference greedy decoding (exact math, no placement effects)."""
        caches = self.new_caches()
        h, _ = self.forward_exact(np.asarray(prompt), caches)
        generated: list[int] = []
        pos = len(prompt)
        next_token = int(np.argmax(self.lm_logits(h[-1:])[0]))
        for _ in range(max_new_tokens):
            generated.append(next_token)
            h, _ = self.forward_exact(
                np.asarray([next_token]), caches, start_pos=pos
            )
            pos += 1
            next_token = int(np.argmax(self.lm_logits(h[-1:])[0]))
        return np.asarray(generated, dtype=np.int64)

    @property
    def n_params(self) -> int:
        """Functional parameter count (not the paper-scale count)."""
        return (
            self.embedding.size
            + sum(block.n_params for block in self.blocks)
            + self.final_norm.n_params
        )
