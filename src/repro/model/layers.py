"""Elementary neural-network layers for the functional numpy model.

Everything here operates on float32 numpy arrays with shape conventions
``(n_tokens, d)`` for token-major activations.  No autograd is needed:
the reproduction only runs inference.
"""

from __future__ import annotations

import numpy as np


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU (swish) activation: ``x * sigmoid(x)``.

    For large-magnitude negative inputs ``exp(-x)`` overflows float32 to
    ``inf``; the quotient is still the correct limit (``-x / inf == -0.0``),
    so the intermediate overflow warning is suppressed rather than the
    math changed.
    """
    with np.errstate(over="ignore"):
        return x / (1.0 + np.exp(-x))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


class Linear:
    """Bias-free linear layer ``y = x @ W.T`` with shape ``(d_out, d_in)``."""

    def __init__(self, d_in: int, d_out: int, rng: np.random.Generator,
                 scale: float | None = None) -> None:
        if scale is None:
            scale = 1.0 / np.sqrt(d_in)
        self.weight = rng.standard_normal((d_out, d_in)).astype(np.float32) * scale
        self.d_in = d_in
        self.d_out = d_out

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return x @ self.weight.T

    @property
    def n_params(self) -> int:
        """Number of parameters in the layer."""
        return self.weight.size


class RMSNorm:
    """Root-mean-square layer normalization with a learned gain."""

    def __init__(self, d: int, eps: float = 1e-6) -> None:
        self.gain = np.ones(d, dtype=np.float32)
        self.eps = eps

    def __call__(self, x: np.ndarray) -> np.ndarray:
        rms = np.sqrt(np.mean(np.square(x), axis=-1, keepdims=True) + self.eps)
        return (x / rms) * self.gain

    @property
    def n_params(self) -> int:
        """Number of parameters in the layer."""
        return self.gain.size
