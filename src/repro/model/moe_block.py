"""One MoE transformer block with a fine-grained execution API.

The inference engines in :mod:`repro.core` schedule attention, gating, and
individual expert FFNs separately (that is the whole point of DAOP), so the
block exposes each stage as its own method instead of a single ``forward``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.model.attention import GroupedQueryAttention, KVCache
from repro.model.config import SimSpec
from repro.model.experts import SwiGLUExpert
from repro.model.gating import Router, RoutingDecision
from repro.model.layers import RMSNorm


class MoEBlock:
    """Self-attention followed by a top-k mixture-of-experts FFN."""

    def __init__(self, sim: SimSpec, n_experts: int, top_k: int,
                 rng: np.random.Generator, block_idx: int = 0) -> None:
        self.sim = sim
        self.n_experts = n_experts
        self.top_k = top_k
        self.block_idx = block_idx
        # Early blocks update the residual stream more strongly (Fig. 5).
        self.residual_scale = sim.residual_scale * (
            1.0 + sim.early_residual_boost * math.exp(-float(block_idx))
        )
        self.attn_norm = RMSNorm(sim.d_model)
        self.attention = GroupedQueryAttention(sim, rng)
        self.ffn_norm = RMSNorm(sim.d_model)
        self.router = Router(sim.d_model, n_experts, top_k, rng)
        self.experts = [
            SwiGLUExpert(sim.d_model, sim.d_ff, rng) for _ in range(n_experts)
        ]

    # ---- fine-grained stages -------------------------------------------------

    def attention_part(self, h: np.ndarray, cache: KVCache,
                       positions: np.ndarray) -> np.ndarray:
        """Non-MoE part: pre-norm attention plus residual connection."""
        attn_out = self.attention(self.attn_norm(h), cache, positions)
        return h + self.residual_scale * attn_out

    def gate_logits(self, h_att: np.ndarray) -> np.ndarray:
        """Router logits on the (normalized) post-attention hidden states."""
        return self.router.logits(self.ffn_norm(np.atleast_2d(h_att)))

    def route(self, h_att: np.ndarray) -> RoutingDecision:
        """Top-k routing decision from post-attention hidden states."""
        return self.router.route_from_logits(self.gate_logits(h_att))

    def expert_forward(self, expert_idx: int, h_att: np.ndarray) -> np.ndarray:
        """Run one expert FFN on post-attention hidden states."""
        return self.experts[expert_idx](self.ffn_norm(np.atleast_2d(h_att)))

    def combine(self, h_att: np.ndarray, expert_outputs: np.ndarray,
                weights: np.ndarray) -> np.ndarray:
        """Mix expert outputs and apply the FFN residual connection.

        Args:
            h_att: post-attention hidden states ``(n_tokens, d)``.
            expert_outputs: stacked outputs ``(n_tokens, k, d)``.
            weights: mixing weights ``(n_tokens, k)``.
        """
        mixed = np.einsum("tk,tkd->td", weights, expert_outputs)
        return h_att + self.residual_scale * mixed

    # ---- convenience ---------------------------------------------------------

    def forward(self, h: np.ndarray, cache: KVCache,
                positions: np.ndarray) -> tuple[np.ndarray, RoutingDecision]:
        """Reference (exact) forward pass through the whole block."""
        h_att = self.attention_part(h, cache, positions)
        decision = self.route(h_att)
        outs = np.stack(
            [
                np.stack(
                    [self.expert_forward(int(e), h_att[t : t + 1])[0]
                     for e in decision.experts[t]]
                )
                for t in range(h_att.shape[0])
            ]
        )
        return self.combine(h_att, outs, decision.weights), decision

    @property
    def n_params(self) -> int:
        """Number of parameters in the block."""
        return (
            self.attn_norm.n_params
            + self.attention.n_params
            + self.ffn_norm.n_params
            + self.router.n_params
            + sum(e.n_params for e in self.experts)
        )
