"""One MoE transformer block with a fine-grained execution API.

The inference engines in :mod:`repro.core` schedule attention, gating, and
individual expert FFNs separately (that is the whole point of DAOP), so the
block exposes each stage as its own method instead of a single ``forward``.

Every stage is *cache-aware*: when a content-addressed compute cache
(duck-typed ``repro.perf.TensorCache``) is attached via
:meth:`set_compute_cache` — normally through
``MoETransformer.attach_compute_cache`` — each stage first looks up the
digest of its inputs and only computes on a miss.  Because the stages are
pure functions of their input bytes and the block weights, a hit is
bitwise-identical to recomputation; with no cache attached the stages
compute directly, unchanged.
"""

from __future__ import annotations

import math

import numpy as np

from repro.model.attention import GroupedQueryAttention, KVCache
from repro.model.config import SimSpec
from repro.model.experts import SwiGLUExpert
from repro.model.gating import Router, RoutingDecision
from repro.model.layers import RMSNorm


class MoEBlock:
    """Self-attention followed by a top-k mixture-of-experts FFN."""

    def __init__(self, sim: SimSpec, n_experts: int, top_k: int,
                 rng: np.random.Generator, block_idx: int = 0) -> None:
        self.sim = sim
        self.n_experts = n_experts
        self.top_k = top_k
        self.block_idx = block_idx
        # Early blocks update the residual stream more strongly (Fig. 5).
        self.residual_scale = sim.residual_scale * (
            1.0 + sim.early_residual_boost * math.exp(-float(block_idx))
        )
        self.attn_norm = RMSNorm(sim.d_model)
        self.attention = GroupedQueryAttention(sim, rng)
        self.ffn_norm = RMSNorm(sim.d_model)
        self.router = Router(sim.d_model, n_experts, top_k, rng)
        self.experts = [
            SwiGLUExpert(sim.d_model, sim.d_ff, rng) for _ in range(n_experts)
        ]
        # Content-addressed compute cache (duck-typed repro.perf.TensorCache)
        # and its key namespace (the owning model's weights fingerprint).
        # None means "compute directly".
        self.compute_cache = None
        self.cache_scope: str | None = None
        # One-slot identity memo for ffn_norm: (h_att object, normed).
        # Holding the input reference keeps its id() stable and valid.
        self._norm_memo: tuple[np.ndarray, np.ndarray] | None = None
        # Bounded identity-LRU upgrade of the ffn_norm memo, built by an
        # attached cache's duck-typed ``identity_memo`` factory (gathered
        # rounds interleave many sequences' arrays through one block,
        # which thrashes a single slot).  None -> one-slot fallback.
        self._norm_lru = None
        # One-slot identity memo for hidden-state digests: the gate, the
        # routed experts, and ffn_norm all key on the same h_att object,
        # which therefore only needs hashing once per block step.
        self._digest_memo: tuple[np.ndarray, bytes] | None = None

    # ---- compute-cache plumbing ----------------------------------------------

    def set_compute_cache(self, cache, scope: str | None) -> None:
        """Attach (or detach, with ``None``) a content-addressed cache.

        ``scope`` namespaces every key — callers pass the model's weights
        fingerprint so in-place weight mutation (quantization) can never
        alias entries from different weight states.
        """
        self.compute_cache = cache
        self.cache_scope = scope
        self._norm_memo = None
        self._digest_memo = None
        memo_factory = getattr(cache, "identity_memo", None)
        self._norm_lru = (
            memo_factory("ffn_norm") if memo_factory is not None else None
        )

    def _arr_digest(self, arr: np.ndarray) -> bytes:
        """Content digest of one array, memoized by object identity."""
        memo = self._digest_memo
        if memo is not None and memo[0] is arr:
            return memo[1]
        digest = self.compute_cache.key(arr)
        self._digest_memo = (arr, digest)
        return digest

    def weight_arrays(self) -> list[np.ndarray]:
        """Every functional weight array of the block, in a fixed order."""
        arrays = [
            self.attn_norm.gain,
            self.attention.wq.weight,
            self.attention.wk.weight,
            self.attention.wv.weight,
            self.attention.wo.weight,
            self.ffn_norm.gain,
            self.router.gate.weight,
        ]
        for expert in self.experts:
            arrays.extend((expert.w1.weight, expert.w2.weight, expert.w3.weight))
        return arrays

    # ---- fine-grained stages -------------------------------------------------

    def attention_part(self, h: np.ndarray, cache: KVCache,
                       positions: np.ndarray) -> np.ndarray:
        """Non-MoE part: pre-norm attention plus residual connection.

        With a compute cache attached, the key covers the KV cache's
        content digest as well as ``h`` and ``positions`` (attention reads
        the whole cached prefix), and the memoized value carries the
        appended keys/values so a hit replays the ``cache.append`` side
        effect exactly.  A KV cache whose digest is ``None`` (truncated
        history) bypasses memoization.
        """
        tensor_cache = self.compute_cache
        kv_digest = None if tensor_cache is None else cache.content_digest
        if tensor_cache is None or kv_digest is None:
            attn_out = self.attention(self.attn_norm(h), cache, positions)
            return h + self.residual_scale * attn_out
        key = tensor_cache.key(
            self.cache_scope, self.block_idx, "attn", kv_digest,
            self._arr_digest(h), np.asarray(positions),
        )
        hit = tensor_cache.get(key, "attn")
        if hit is not None:
            h_att, k, v = hit
            cache.append(k, v)
            return h_att
        attn_out, k, v = self.attention.forward_with_kv(
            self.attn_norm(h), cache, positions
        )
        h_att = h + self.residual_scale * attn_out
        h_att, _, _ = tensor_cache.put(key, "attn", (h_att, k, v))
        return h_att

    def ffn_normed(self, h_att: np.ndarray) -> np.ndarray:
        """``ffn_norm`` of the post-attention states, computed once.

        The normalization is shared by the gate and every routed expert
        (previously recomputed per consumer — 3x per token at top-2); an
        identity memo makes repeat calls on the same array free even
        without a compute cache attached.  With a cache attached the
        memo is a bounded LRU from its ``identity_memo`` factory, so
        gathered rounds that interleave several sequences' arrays
        through the block still hit; standalone blocks fall back to a
        one-slot memo.
        """
        h_att = np.atleast_2d(h_att)
        lru = self._norm_lru
        if lru is not None:
            normed = lru.get(h_att)
            if normed is not None:
                return normed
        else:
            memo = self._norm_memo
            if memo is not None and memo[0] is h_att:
                return memo[1]
        tensor_cache = self.compute_cache
        if tensor_cache is None:
            normed = self.ffn_norm(h_att)
        else:
            key = tensor_cache.key(
                self.cache_scope, self.block_idx, "ffn_norm",
                self._arr_digest(h_att),
            )
            normed = tensor_cache.get(key, "ffn_norm")
            if normed is None:
                normed = tensor_cache.put(key, "ffn_norm", self.ffn_norm(h_att))
        if lru is not None:
            lru.put(h_att, normed)
        else:
            self._norm_memo = (h_att, normed)
        return normed

    def gate_logits(self, h_att: np.ndarray) -> np.ndarray:
        """Router logits on the (normalized) post-attention hidden states."""
        h_att = np.atleast_2d(h_att)
        tensor_cache = self.compute_cache
        if tensor_cache is None:
            return self.router.logits(self.ffn_normed(h_att))
        key = tensor_cache.key(
            self.cache_scope, self.block_idx, "gate", self._arr_digest(h_att)
        )
        logits = tensor_cache.get(key, "gate")
        if logits is None:
            logits = tensor_cache.put(
                key, "gate", self.router.logits(self.ffn_normed(h_att))
            )
        return logits

    def route_from_logits(self, logits: np.ndarray) -> RoutingDecision:
        """Top-k routing decision from precomputed gate logits.

        The memoized value is the ``(experts, weights)`` pair; the caller's
        logits are re-attached to the returned decision, so hit and miss
        produce identical :class:`RoutingDecision` contents.
        """
        logits = np.atleast_2d(logits)
        tensor_cache = self.compute_cache
        if tensor_cache is None:
            return self.router.route_from_logits(logits)
        key = tensor_cache.key(self.cache_scope, self.block_idx, "route", logits)
        hit = tensor_cache.get(key, "route")
        if hit is None:
            decision = self.router.route_from_logits(logits)
            hit = tensor_cache.put(
                key, "route", (decision.experts, decision.weights)
            )
        experts, weights = hit
        return RoutingDecision(logits=logits, experts=experts, weights=weights)

    def route(self, h_att: np.ndarray) -> RoutingDecision:
        """Top-k routing decision from post-attention hidden states."""
        return self.route_from_logits(self.gate_logits(h_att))

    def expert_forward(self, expert_idx: int, h_att: np.ndarray,
                       token_idx: np.ndarray | None = None) -> np.ndarray:
        """Run one expert FFN on (a subset of) post-attention states.

        ``token_idx`` selects rows of ``h_att`` *after* normalization —
        RMSNorm is row-wise, so ``ffn_norm(h_att)[token_idx]`` is bitwise
        equal to ``ffn_norm(h_att[token_idx])`` while letting all experts
        of a block share one normalization (and one cache entry for it).
        A ``token_idx`` covering every row in order is canonicalized to
        ``None`` so both spellings share a cache key.
        """
        h_att = np.atleast_2d(h_att)
        if token_idx is not None:
            token_idx = np.asarray(token_idx, dtype=np.int64)
            if token_idx.shape == (h_att.shape[0],) and np.array_equal(
                token_idx, np.arange(h_att.shape[0])
            ):
                token_idx = None
        tensor_cache = self.compute_cache
        if tensor_cache is None:
            normed = self.ffn_normed(h_att)
            x = normed if token_idx is None else normed[token_idx]
            return self.experts[expert_idx](x)
        # The key carries the input's row count explicitly (on top of the
        # shape already folded into the array digest) so a gathered
        # ``[batch*k, d]`` input can never alias a ``[k, d]``
        # single-sequence digest.
        key = tensor_cache.key(
            self.cache_scope, self.block_idx, "expert", int(expert_idx),
            int(h_att.shape[0]), self._arr_digest(h_att), token_idx,
        )
        out = tensor_cache.get(key, "expert")
        if out is None:
            normed = self.ffn_normed(h_att)
            x = normed if token_idx is None else normed[token_idx]
            out = tensor_cache.put(key, "expert", self.experts[expert_idx](x))
        return out

    def expert_forward_rows(self, expert_idx: int, segments) -> list:
        """Gathered expert execution over per-sequence row segments.

        ``segments`` is a sequence of ``(h_att, token_idx)`` pairs, one
        per participating sequence, each exactly as
        :meth:`expert_forward` would receive it.  Functionally this is
        the batched ``[sum(rows), d]`` expert matmul of one gathered
        cross-sequence kernel, but it is evaluated segment-by-segment:
        BLAS GEMM reductions are not row-wise bitwise stable, so a naive
        ``vstack`` would change every participant's values at the last
        ulp and break the batch=1 parity contract.  Per-segment
        evaluation keeps each sequence's outputs (and compute-cache
        keys) bitwise identical to its solo call; the simulated *cost*
        of the single gathered kernel is charged by the engine's cost
        model, not here.

        Returns one output array per segment, in segment order.
        """
        return [
            self.expert_forward(expert_idx, h_att, token_idx=token_idx)
            for h_att, token_idx in segments
        ]

    def combine(self, h_att: np.ndarray, expert_outputs: np.ndarray,
                weights: np.ndarray) -> np.ndarray:
        """Mix expert outputs and apply the FFN residual connection.

        Args:
            h_att: post-attention hidden states ``(n_tokens, d)``.
            expert_outputs: stacked outputs ``(n_tokens, k, d)``.
            weights: mixing weights ``(n_tokens, k)``.
        """
        mixed = np.einsum("tk,tkd->td", weights, expert_outputs)
        return h_att + self.residual_scale * mixed

    # ---- convenience ---------------------------------------------------------

    def forward(self, h: np.ndarray, cache: KVCache,
                positions: np.ndarray) -> tuple[np.ndarray, RoutingDecision]:
        """Reference (exact) forward pass through the whole block.

        Experts dispatch grouped per expert id — the same order and
        batching as the engines' ``_execute_experts_at_location`` and
        :meth:`MoETransformer.forward_exact` — so the reference path
        produces (and, with a cache attached, shares) the exact tensors
        the scheduled paths do.
        """
        h_att = self.attention_part(h, cache, positions)
        decision = self.route(h_att)
        outs = np.empty(
            (h_att.shape[0], self.top_k, self.sim.d_model), dtype=np.float32
        )
        for expert_idx in np.unique(decision.experts):
            mask = decision.experts == expert_idx
            token_idx = np.nonzero(mask.any(axis=1))[0]
            out = self.expert_forward(int(expert_idx), h_att, token_idx=token_idx)
            for row, t in enumerate(token_idx):
                for slot in np.nonzero(mask[t])[0]:
                    outs[t, int(slot)] = out[row]
        return self.combine(h_att, outs, decision.weights), decision

    @property
    def n_params(self) -> int:
        """Number of parameters in the block."""
        return (
            self.attn_norm.n_params
            + self.attention.n_params
            + self.ffn_norm.n_params
            + self.router.n_params
            + sum(e.n_params for e in self.experts)
        )
