"""A toy word-level tokenizer over the synthetic topical vocabulary.

The reproduction's workloads are streams of token ids; the tokenizer exists
so examples can print human-readable text and round-trip strings.  Token
surface forms encode their topic (``t07_w012``), which makes generated text
easy to eyeball for topical coherence.
"""

from __future__ import annotations

import numpy as np

from repro.model.vocab import TopicVocabulary

_SPECIAL_NAMES = {0: "<pad>", 1: "<bos>", 2: "<eos>", 3: "<unk>"}


class ToyTokenizer:
    """Bidirectional token-id / string mapping for a :class:`TopicVocabulary`."""

    def __init__(self, vocab: TopicVocabulary) -> None:
        self.vocab = vocab
        self._id_to_word: list[str] = []
        per_topic_counter = [0] * vocab.n_topics
        for token in range(vocab.vocab_size):
            topic = vocab.topic_of(token)
            if topic < 0:
                self._id_to_word.append(
                    _SPECIAL_NAMES.get(token, f"<special{token}>")
                )
            else:
                word = f"t{topic:02d}_w{per_topic_counter[topic]:03d}"
                per_topic_counter[topic] += 1
                self._id_to_word.append(word)
        self._word_to_id = {w: i for i, w in enumerate(self._id_to_word)}

    def decode(self, tokens: np.ndarray | list[int]) -> str:
        """Render token ids as a space-separated string."""
        return " ".join(self._id_to_word[int(t)] for t in np.asarray(tokens))

    def encode(self, text: str) -> np.ndarray:
        """Parse a space-separated string back into token ids."""
        ids = [
            self._word_to_id.get(word, self.vocab.unk_id)
            for word in text.split()
        ]
        return np.asarray(ids, dtype=np.int64)

    def __len__(self) -> int:
        return self.vocab.vocab_size
