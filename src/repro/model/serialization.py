"""Bitwise array/state serialization shared by every checkpoint layer.

Checkpoints must restore *bitwise* identical state (the resume-parity
audit compares tokens, counters, and per-op timelines exactly), so the
array codec round-trips raw buffer bytes rather than decimal renderings:
``encode_array`` captures dtype, shape, and a base64 of ``tobytes()``;
``decode_array`` rebuilds the identical ndarray.  Everything here is
plain-JSON-compatible so checkpoints stay diffable text artifacts.

The module lives in :mod:`repro.model` (layer rank 0) so every layer of
the stack — engine, scheduler, simulators, scenarios — may import it
without violating the import DAG.
"""

from __future__ import annotations

import base64
import hashlib
import json

import numpy as np


def encode_array(arr: np.ndarray) -> dict:
    """Encode an ndarray as a JSON-compatible dict, bitwise."""
    arr = np.ascontiguousarray(arr)
    return {
        "dtype": arr.dtype.str,
        "shape": list(arr.shape),
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def decode_array(payload: dict) -> np.ndarray:
    """Rebuild the exact ndarray :func:`encode_array` captured."""
    raw = base64.b64decode(payload["data"])
    arr = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
    return arr.reshape(payload["shape"]).copy()


def encode_optional_array(arr: np.ndarray | None) -> dict | None:
    """``encode_array`` that passes ``None`` through."""
    return None if arr is None else encode_array(arr)


def decode_optional_array(payload: dict | None) -> np.ndarray | None:
    """``decode_array`` that passes ``None`` through."""
    return None if payload is None else decode_array(payload)


def canonical_digest(payload: object) -> str:
    """Content digest of a JSON-compatible payload (hex, 32 chars).

    The digest is over the *canonical* JSON rendering (sorted keys,
    minimal separators), so semantically identical payloads hash
    identically regardless of construction order — the same convention
    the TensorCache content keys and ScenarioReport digests use.
    """
    rendered = json.dumps(payload, sort_keys=True,
                          separators=(",", ":"), ensure_ascii=True)
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()[:32]
