"""Topic-structured vocabulary.

Real LLM embedding spaces cluster semantically related tokens.  The
synthetic workloads in this reproduction rely on that structure: a sequence
about one "topic" produces hidden states biased toward that topic's
direction, which in turn biases the (random but fixed) routers toward a
sequence-specific subset of experts -- reproducing the paper's observation
(1) that dominant experts vary per input sequence while the dataset-level
expert distribution stays near uniform.

:class:`TopicVocabulary` partitions the token ids into topics and builds an
embedding table where each token's vector is its topic centroid plus noise.
"""

from __future__ import annotations

import numpy as np


class TopicVocabulary:
    """Vocabulary whose tokens cluster around topic centroids."""

    def __init__(
        self,
        vocab_size: int,
        n_topics: int,
        d_model: int,
        seed: int = 0,
        topic_strength: float = 2.2,
        noise_strength: float = 1.0,
        n_special: int = 4,
    ) -> None:
        if n_topics < 1 or vocab_size < n_topics + n_special:
            raise ValueError("vocabulary too small for topic count")
        self.vocab_size = vocab_size
        self.n_topics = n_topics
        self.d_model = d_model
        self.topic_strength = topic_strength
        self.noise_strength = noise_strength
        self.n_special = n_special
        rng = np.random.default_rng(seed)
        centroids = rng.standard_normal((n_topics, d_model)).astype(np.float32)
        centroids /= np.linalg.norm(centroids, axis=1, keepdims=True)
        self.centroids = centroids
        # Tokens [0, n_special) are special (pad/bos/eos/unk) and belong to
        # no topic; the rest are assigned round-robin so every topic has an
        # equal share of the vocabulary.
        assignment = np.full(vocab_size, -1, dtype=np.int64)
        regular = np.arange(n_special, vocab_size)
        assignment[regular] = (regular - n_special) % n_topics
        self.token_topic = assignment
        self._rng_seed = seed

    @property
    def pad_id(self) -> int:
        """Padding token id."""
        return 0

    @property
    def bos_id(self) -> int:
        """Beginning-of-sequence token id."""
        return 1

    @property
    def eos_id(self) -> int:
        """End-of-sequence token id."""
        return 2

    @property
    def unk_id(self) -> int:
        """Unknown-token id."""
        return 3

    def tokens_of_topic(self, topic: int) -> np.ndarray:
        """All token ids belonging to ``topic``."""
        if not 0 <= topic < self.n_topics:
            raise ValueError("topic out of range")
        return np.nonzero(self.token_topic == topic)[0]

    def topic_of(self, token: int) -> int:
        """Topic of a token id (``-1`` for special tokens)."""
        return int(self.token_topic[token])

    def build_embedding(self) -> np.ndarray:
        """Embedding table with topical cluster structure."""
        rng = np.random.default_rng(self._rng_seed + 1)
        noise = rng.standard_normal(
            (self.vocab_size, self.d_model)
        ).astype(np.float32)
        emb = self.noise_strength * noise
        regular = self.token_topic >= 0
        emb[regular] += (
            self.topic_strength * self.centroids[self.token_topic[regular]]
        )
        return emb.astype(np.float32)
