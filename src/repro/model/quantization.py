"""Weight quantization simulation.

Mixtral-Offloading moves experts across PCIe in ~4-bit form (HQQ); the
transfer-size effect is modeled in the cost model, and this module adds
the *functional* effect: fake-quantizing an expert's weights to b bits
with per-output-channel scales, exactly like round-to-nearest
integer quantization on real checkpoints.  This lets the accuracy harness
measure what quantized experts cost, the same way the paper's Tables V/VI
measure DAOP's approximations.
"""

from __future__ import annotations

import numpy as np

from repro.model.experts import SwiGLUExpert
from repro.model.transformer import MoETransformer


def fake_quantize(weight: np.ndarray, bits: int) -> np.ndarray:
    """Round-to-nearest symmetric quantization with per-row scales.

    Args:
        weight: ``(d_out, d_in)`` weight matrix.
        bits: integer bit width (2..16).

    Returns:
        The dequantized (fp32) matrix after the quantization round trip.
    """
    if not 2 <= bits <= 16:
        raise ValueError("bits must be in [2, 16]")
    weight = np.asarray(weight, dtype=np.float32)
    q_max = float(2 ** (bits - 1) - 1)
    scales = np.max(np.abs(weight), axis=1, keepdims=True) / q_max
    scales = np.where(scales == 0.0, 1.0, scales)
    quantized = np.clip(np.round(weight / scales), -q_max - 1, q_max)
    return (quantized * scales).astype(np.float32)


def quantize_expert(expert: SwiGLUExpert, bits: int) -> None:
    """Fake-quantize one expert's three projection matrices in place."""
    for layer in (expert.w1, expert.w2, expert.w3):
        layer.weight = fake_quantize(layer.weight, bits)


def quantize_experts(model: MoETransformer, bits: int,
                     blocks: list[int] | None = None) -> int:
    """Fake-quantize every expert (optionally of selected blocks).

    Returns the number of experts quantized.  Attention, router, and
    embedding weights stay full precision, matching Mixtral-Offloading's
    mixed-quantization design (only experts are compressed).

    The model's weights fingerprint is invalidated afterwards so an
    attached compute cache can never serve pre-quantization tensors for
    the mutated model.  Callers of :func:`quantize_expert` directly (no
    model handle) must invalidate themselves.
    """
    count = 0
    target_blocks = range(model.n_blocks) if blocks is None else blocks
    for block_idx in target_blocks:
        for expert in model.blocks[block_idx].experts:
            quantize_expert(expert, bits)
            count += 1
    model.invalidate_weights_fingerprint()
    return count


def quantization_error(weight: np.ndarray, bits: int) -> float:
    """Relative Frobenius error introduced by fake quantization."""
    dequantized = fake_quantize(weight, bits)
    denom = np.linalg.norm(weight)
    if denom == 0:
        return 0.0
    return float(np.linalg.norm(dequantized - weight) / denom)
