"""Model zoo: the paper's evaluated models and a tiny test model.

Each builder returns a :class:`repro.model.transformer.MoETransformer`
whose *topology* (block count, expert count, top-k) matches the paper's
model and whose *architectural spec* carries the true paper-scale
dimensions for the hardware cost model.  The functional numpy dimensions
are small so inference runs quickly on a laptop.

Parameter-count sanity (reproduces paper Table III and Fig. 1):

- Mixtral 8x7B: 46.6 B total, 45.1 B expert, 27.4 % activated per token.
- Phi-3.5 MoE: 41.7 B total, 40.3 B expert.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.config import ArchSpec, ModelProfile, SimSpec
from repro.model.tokenizer import ToyTokenizer
from repro.model.transformer import MoETransformer
from repro.model.vocab import TopicVocabulary

MIXTRAL_8X7B_ARCH = ArchSpec(
    name="Mixtral-8x7B",
    d_model=4096,
    n_heads=32,
    n_kv_heads=8,
    d_ff=14336,
    n_blocks=32,
    n_experts=8,
    top_k=2,
    vocab_size=32000,
)

PHI_3_5_MOE_ARCH = ArchSpec(
    name="Phi-3.5-MoE",
    d_model=4096,
    n_heads=32,
    n_kv_heads=8,
    d_ff=6400,
    n_blocks=32,
    n_experts=16,
    top_k=2,
    vocab_size=32064,
)

TINY_ARCH = ArchSpec(
    name="Tiny-MoE",
    d_model=256,
    n_heads=4,
    n_kv_heads=2,
    d_ff=512,
    n_blocks=4,
    n_experts=4,
    top_k=2,
    vocab_size=512,
)

DEFAULT_N_TOPICS = 32


@dataclass
class ModelBundle:
    """A functional model plus its vocabulary and tokenizer."""

    model: MoETransformer
    vocab: TopicVocabulary
    tokenizer: ToyTokenizer

    @property
    def profile(self) -> ModelProfile:
        """The model's profile (arch + sim specs)."""
        return self.model.profile

    @property
    def arch(self) -> ArchSpec:
        """Paper-scale architecture spec."""
        return self.model.profile.arch


def _build(arch: ArchSpec, seed: int, n_blocks: int | None,
           sim: SimSpec | None, n_topics: int) -> ModelBundle:
    sim = sim or SimSpec()
    profile = ModelProfile.from_arch(arch, sim=sim, n_blocks=n_blocks, seed=seed)
    vocab = TopicVocabulary(
        vocab_size=sim.vocab_size,
        n_topics=n_topics,
        d_model=sim.d_model,
        seed=seed,
    )
    model = MoETransformer(profile, embedding=vocab.build_embedding())
    return ModelBundle(model=model, vocab=vocab, tokenizer=ToyTokenizer(vocab))


def build_mixtral_8x7b_sim(seed: int = 0, n_blocks: int | None = None,
                           sim: SimSpec | None = None,
                           n_topics: int = DEFAULT_N_TOPICS) -> ModelBundle:
    """Functional analogue of Mixtral 8x7B (32 blocks, 8 experts, top-2)."""
    return _build(MIXTRAL_8X7B_ARCH, seed, n_blocks, sim, n_topics)


def build_phi_3_5_moe_sim(seed: int = 0, n_blocks: int | None = None,
                          sim: SimSpec | None = None,
                          n_topics: int = DEFAULT_N_TOPICS) -> ModelBundle:
    """Functional analogue of Phi-3.5 MoE (32 blocks, 16 experts, top-2)."""
    return _build(PHI_3_5_MOE_ARCH, seed, n_blocks, sim, n_topics)


def build_tiny_moe(seed: int = 0, n_blocks: int = 4,
                   n_topics: int = 8) -> ModelBundle:
    """A tiny 4-block / 4-expert model for fast unit tests."""
    sim = SimSpec(d_model=32, n_heads=2, n_kv_heads=1, d_ff=48, vocab_size=128)
    return _build(TINY_ARCH, seed, n_blocks, sim, n_topics)
