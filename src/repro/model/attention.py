"""Grouped-query self-attention with a KV cache for the functional model."""

from __future__ import annotations

import hashlib

import numpy as np

from repro.model.config import SimSpec
from repro.model.layers import Linear, softmax
from repro.model.rope import RotaryEmbedding
from repro.model.serialization import decode_array, encode_array


class KVCache:
    """Append-only key/value cache for one block.

    Stores tensors of shape ``(n_kv_heads, n_cached, head_dim)`` and grows
    geometrically to amortize reallocation during decode.
    """

    def __init__(self, n_kv_heads: int, head_dim: int) -> None:
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        self._capacity = 64
        self._len = 0
        self._k = np.zeros((n_kv_heads, self._capacity, head_dim), dtype=np.float32)
        self._v = np.zeros((n_kv_heads, self._capacity, head_dim), dtype=np.float32)
        # Rolling digest of everything ever appended, in order — a cheap
        # content address for the cache state (repro.perf memoization).
        self._digest = hashlib.blake2b(digest_size=16)
        self._digest_valid = True
        # Row count of each append, in order: the digest chains over
        # (k, v) pairs *per append call*, so restoring a checkpoint must
        # replay the exact append boundaries to land on the same digest.
        self._chunks: list[int] = []

    def __len__(self) -> int:
        return self._len

    def _grow(self, needed: int) -> None:
        while self._capacity < needed:
            self._capacity *= 2
        k = np.zeros((self.n_kv_heads, self._capacity, self.head_dim), dtype=np.float32)
        v = np.zeros_like(k)
        k[:, : self._len] = self._k[:, : self._len]
        v[:, : self._len] = self._v[:, : self._len]
        self._k, self._v = k, v

    def append(self, k: np.ndarray, v: np.ndarray) -> None:
        """Append ``(n_kv_heads, n_new, head_dim)`` keys and values."""
        n_new = k.shape[1]
        if self._len + n_new > self._capacity:
            self._grow(self._len + n_new)
        self._k[:, self._len : self._len + n_new] = k
        self._v[:, self._len : self._len + n_new] = v
        self._len += n_new
        self._chunks.append(int(n_new))
        if self._digest_valid:
            self._digest.update(np.ascontiguousarray(k).tobytes())
            self._digest.update(np.ascontiguousarray(v).tobytes())

    @property
    def keys(self) -> np.ndarray:
        """View of the cached keys, shape ``(n_kv_heads, len, head_dim)``."""
        return self._k[:, : self._len]

    @property
    def values(self) -> np.ndarray:
        """View of the cached values, shape ``(n_kv_heads, len, head_dim)``."""
        return self._v[:, : self._len]

    @property
    def content_digest(self) -> bytes | None:
        """Digest of the append history, or ``None`` once untrackable.

        The digest is chained over every ``append`` in order, so two
        caches hold bitwise-identical content whenever their digests
        match.  After a shrinking :meth:`truncate` the history no longer
        describes the live content and the digest goes permanently
        ``None`` — consumers (the compute cache) must then bypass.
        """
        return self._digest.digest() if self._digest_valid else None

    def truncate(self, length: int) -> None:
        """Drop cached entries beyond ``length`` (used to reset sequences)."""
        if length < 0 or length > self._len:
            raise ValueError("invalid truncation length")
        if length < self._len:
            self._digest_valid = False
        self._len = length

    def to_state_dict(self) -> dict:
        """Serialize the cache for a checkpoint (bitwise round-trip).

        Captures the live content *and* the append-chunk boundaries so
        :meth:`from_state_dict` can replay the appends one chunk at a
        time, reproducing the exact chained content digest — a restored
        cache is indistinguishable from the original to the compute
        cache's content addressing.
        """
        return {
            "n_kv_heads": self.n_kv_heads,
            "head_dim": self.head_dim,
            "k": encode_array(self._k[:, : self._len]),
            "v": encode_array(self._v[:, : self._len]),
            # A truncated cache's chunk history no longer describes its
            # live content (and its digest is dead anyway): store the
            # content as one opaque chunk instead.
            "chunks": (list(self._chunks) if self._digest_valid
                       else [self._len]),
            "digest_valid": self._digest_valid,
        }

    @classmethod
    def from_state_dict(cls, payload: dict) -> "KVCache":
        """Rebuild a cache captured by :meth:`to_state_dict`."""
        cache = cls(int(payload["n_kv_heads"]), int(payload["head_dim"]))
        k = decode_array(payload["k"])
        v = decode_array(payload["v"])
        if not payload["digest_valid"]:
            cache._digest_valid = False
        pos = 0
        for n_new in payload["chunks"]:
            n_new = int(n_new)
            if n_new:
                cache.append(k[:, pos: pos + n_new], v[:, pos: pos + n_new])
            pos += n_new
        if pos != k.shape[1]:
            raise ValueError(
                "KV-cache chunk boundaries do not cover the content: "
                f"chunks sum to {pos}, content holds {k.shape[1]} rows"
            )
        return cache


class GroupedQueryAttention:
    """Multi-head attention with grouped KV heads, RoPE, and causal masking."""

    def __init__(self, sim: SimSpec, rng: np.random.Generator) -> None:
        self.sim = sim
        d = sim.d_model
        kv_dim = sim.n_kv_heads * sim.head_dim
        self.wq = Linear(d, d, rng)
        self.wk = Linear(d, kv_dim, rng)
        self.wv = Linear(d, kv_dim, rng)
        self.wo = Linear(d, d, rng)
        self.rope = RotaryEmbedding(sim.head_dim, sim.rope_base)
        self._group = sim.n_heads // sim.n_kv_heads

    def new_cache(self) -> KVCache:
        """Create an empty KV cache matching this attention's geometry."""
        return KVCache(self.sim.n_kv_heads, self.sim.head_dim)

    def __call__(self, x: np.ndarray, cache: KVCache,
                 positions: np.ndarray) -> np.ndarray:
        """Attend ``x`` (``(n_new, d_model)``) over the cache plus itself.

        New keys/values are appended to ``cache``.  ``positions`` gives the
        absolute positions of the new tokens; causality is enforced for the
        new tokens relative to each other and everything already cached is
        visible (it precedes them).
        """
        out, _, _ = self.forward_with_kv(x, cache, positions)
        return out

    def forward_with_kv(
        self, x: np.ndarray, cache: KVCache, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Like :meth:`__call__`, but also return the appended keys/values.

        The extra ``(k, v)`` (shape ``(n_kv_heads, n_new, head_dim)``) let a
        compute cache replay the exact ``cache.append`` side effect on a hit
        without recomputing the projections.
        """
        sim = self.sim
        n_new = x.shape[0]
        q = self.wq(x).reshape(n_new, sim.n_heads, sim.head_dim)
        k = self.wk(x).reshape(n_new, sim.n_kv_heads, sim.head_dim)
        v = self.wv(x).reshape(n_new, sim.n_kv_heads, sim.head_dim)

        # (heads, tokens, head_dim) layout for rope + attention.
        q = np.transpose(q, (1, 0, 2))
        k = np.transpose(k, (1, 0, 2))
        v = np.transpose(v, (1, 0, 2))
        q = self.rope.apply(q, positions)
        k = self.rope.apply(k, positions)

        n_prev = len(cache)
        cache.append(k, v)
        keys = cache.keys      # (n_kv, n_total, hd)
        values = cache.values  # (n_kv, n_total, hd)
        n_total = keys.shape[1]

        # Expand KV heads to query heads (grouped-query attention).
        keys_q = np.repeat(keys, self._group, axis=0)
        values_q = np.repeat(values, self._group, axis=0)

        scores = q @ np.transpose(keys_q, (0, 2, 1))
        scores /= np.sqrt(sim.head_dim)

        # Causal mask: new token i (absolute n_prev + i) sees keys 0..n_prev+i.
        key_pos = np.arange(n_total)
        query_pos = n_prev + np.arange(n_new)
        mask = key_pos[None, :] > query_pos[:, None]
        scores = np.where(mask[None, :, :], -1e9, scores)

        weights = softmax(scores, axis=-1)
        out = weights @ values_q                       # (n_heads, n_new, hd)
        out = np.transpose(out, (1, 0, 2)).reshape(n_new, sim.d_model)
        return self.wo(out), k, v

    @property
    def n_params(self) -> int:
        """Number of parameters in the attention projections."""
        return sum(w.n_params for w in (self.wq, self.wk, self.wv, self.wo))
