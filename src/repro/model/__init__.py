"""Functional decoder-only MoE transformer (numpy)."""

from repro.model.config import ArchSpec, ModelProfile, SimSpec
from repro.model.attention import GroupedQueryAttention, KVCache
from repro.model.experts import SwiGLUExpert
from repro.model.gating import Router, RoutingDecision
from repro.model.layers import Linear, RMSNorm, silu, softmax, log_softmax
from repro.model.moe_block import MoEBlock
from repro.model.quantization import (
    fake_quantize,
    quantization_error,
    quantize_expert,
    quantize_experts,
)
from repro.model.rope import RotaryEmbedding
from repro.model.sampling import greedy, top_k_sample
from repro.model.tokenizer import ToyTokenizer
from repro.model.transformer import MoETransformer
from repro.model.vocab import TopicVocabulary
from repro.model.zoo import (
    MIXTRAL_8X7B_ARCH,
    PHI_3_5_MOE_ARCH,
    TINY_ARCH,
    ModelBundle,
    build_mixtral_8x7b_sim,
    build_phi_3_5_moe_sim,
    build_tiny_moe,
)

__all__ = [
    "ArchSpec",
    "ModelProfile",
    "SimSpec",
    "GroupedQueryAttention",
    "KVCache",
    "SwiGLUExpert",
    "Router",
    "RoutingDecision",
    "Linear",
    "RMSNorm",
    "silu",
    "softmax",
    "log_softmax",
    "MoEBlock",
    "fake_quantize",
    "quantization_error",
    "quantize_expert",
    "quantize_experts",
    "RotaryEmbedding",
    "greedy",
    "top_k_sample",
    "ToyTokenizer",
    "MoETransformer",
    "TopicVocabulary",
    "MIXTRAL_8X7B_ARCH",
    "PHI_3_5_MOE_ARCH",
    "TINY_ARCH",
    "ModelBundle",
    "build_mixtral_8x7b_sim",
    "build_phi_3_5_moe_sim",
    "build_tiny_moe",
]
