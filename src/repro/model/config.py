"""Model configuration objects.

Two kinds of dimensions exist side by side in this reproduction:

- :class:`ArchSpec` carries the *paper-scale* architectural dimensions of
  the evaluated models (Mixtral 8x7B, Phi-3.5 MoE).  These drive the
  hardware cost model: parameter counts, bytes moved per op, FLOPs per op.
  No numpy computation ever runs at these sizes.

- :class:`SimSpec` carries the *functional* dimensions of the scaled-down
  numpy transformer that actually executes.  Routing decisions, hidden
  states, KV caches, and generated tokens all come from this model.

The two are bundled by :class:`ModelProfile`.  Structural fields that the
engine logic depends on (block count, expert count, top-k) are shared: the
functional model always mirrors the architectural block/expert topology so
that placement maps, routing traces and schedules line up one-to-one with
the paper's models.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ArchSpec:
    """Paper-scale architecture of a decoder-only MoE transformer.

    All sizes are in elements (not bytes); ``dtype_bytes`` gives the
    storage width used for weights and activations on the simulated
    platform (2 bytes = fp16, matching the paper's deployments).
    """

    name: str
    d_model: int
    n_heads: int
    n_kv_heads: int
    d_ff: int
    n_blocks: int
    n_experts: int
    top_k: int
    vocab_size: int
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        if self.n_heads % self.n_kv_heads != 0:
            raise ValueError("n_heads must be a multiple of n_kv_heads")
        if not 0 < self.top_k <= self.n_experts:
            raise ValueError("top_k must be in (0, n_experts]")

    @property
    def head_dim(self) -> int:
        """Per-head dimension of the attention projections."""
        return self.d_model // self.n_heads

    # ---- parameter counting -------------------------------------------------

    @property
    def attention_params(self) -> int:
        """Parameters of one block's attention (q, k, v, o projections)."""
        q = self.d_model * self.d_model
        kv = 2 * self.d_model * (self.n_kv_heads * self.head_dim)
        o = self.d_model * self.d_model
        return q + kv + o

    @property
    def expert_params(self) -> int:
        """Parameters of a single SwiGLU expert (w1, w2, w3)."""
        return 3 * self.d_model * self.d_ff

    @property
    def gate_params(self) -> int:
        """Parameters of one block's router (gating MLP)."""
        return self.d_model * self.n_experts

    @property
    def norm_params(self) -> int:
        """Parameters of one block's two RMSNorm layers."""
        return 2 * self.d_model

    @property
    def block_non_expert_params(self) -> int:
        """Per-block parameters excluding the expert FFNs."""
        return self.attention_params + self.gate_params + self.norm_params

    @property
    def block_params(self) -> int:
        """Total parameters of one transformer block (all experts)."""
        return self.block_non_expert_params + self.n_experts * self.expert_params

    @property
    def embedding_params(self) -> int:
        """Token embedding table parameters (the LM head is weight-tied)."""
        return self.vocab_size * self.d_model

    @property
    def total_expert_params(self) -> int:
        """Parameters of every expert in the model."""
        return self.n_blocks * self.n_experts * self.expert_params

    @property
    def total_params(self) -> int:
        """Total model parameters (embeddings + blocks + final norm)."""
        final_norm = self.d_model
        return self.embedding_params + self.n_blocks * self.block_params + final_norm

    @property
    def activated_params_per_token(self) -> int:
        """Parameters touched for one token (attention + top-k experts)."""
        per_block = self.block_non_expert_params + self.top_k * self.expert_params
        return self.embedding_params + self.n_blocks * per_block + self.d_model

    @property
    def activated_fraction(self) -> float:
        """Fraction of total parameters activated per token (paper Fig. 1)."""
        return self.activated_params_per_token / self.total_params

    # ---- byte sizing (for the cost model) -----------------------------------

    @property
    def expert_bytes(self) -> int:
        """Storage footprint of a single expert."""
        return self.expert_params * self.dtype_bytes

    @property
    def block_non_expert_bytes(self) -> int:
        """Storage footprint of one block without its experts."""
        return self.block_non_expert_params * self.dtype_bytes

    @property
    def hidden_state_bytes(self) -> int:
        """Bytes of one token's hidden state vector."""
        return self.d_model * self.dtype_bytes

    @property
    def kv_bytes_per_token_per_block(self) -> int:
        """KV-cache bytes appended per token per block."""
        return 2 * self.n_kv_heads * self.head_dim * self.dtype_bytes


@dataclass(frozen=True)
class SimSpec:
    """Functional dimensions of the scaled-down numpy transformer."""

    d_model: int = 64
    n_heads: int = 4
    n_kv_heads: int = 2
    d_ff: int = 128
    vocab_size: int = 512
    rope_base: float = 10000.0
    # Per-block residual update scale.  Keeping block outputs small relative
    # to the residual stream is what makes consecutive hidden states highly
    # correlated -- the mechanism behind the paper's observation (3) that the
    # next layer's gate evaluated on the current layer's activations predicts
    # the next layer's expert selection with high accuracy.
    residual_scale: float = 0.5
    # Early blocks transform the residual stream more aggressively (their
    # update scale is multiplied by ``1 + early_residual_boost * exp(-i)``),
    # reproducing the paper's Fig. 5 shape where layer-ahead prediction is
    # poor in the first few blocks and stabilizes afterwards -- the reason
    # DAOP only enables prediction for blocks i >= 4.
    early_residual_boost: float = 2.5

    def __post_init__(self) -> None:
        if self.n_heads % self.n_kv_heads != 0:
            raise ValueError("n_heads must be a multiple of n_kv_heads")
        if self.d_model % self.n_heads != 0:
            raise ValueError("d_model must be a multiple of n_heads")

    @property
    def head_dim(self) -> int:
        """Per-head dimension of the functional attention."""
        return self.d_model // self.n_heads


@dataclass(frozen=True)
class ModelProfile:
    """Bundle of architectural and functional specs plus shared topology."""

    arch: ArchSpec
    sim: SimSpec
    n_blocks: int
    n_experts: int
    top_k: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_blocks < 1:
            raise ValueError("n_blocks must be positive")
        if not 0 < self.top_k <= self.n_experts:
            raise ValueError("top_k must be in (0, n_experts]")

    @classmethod
    def from_arch(
        cls,
        arch: ArchSpec,
        sim: SimSpec | None = None,
        n_blocks: int | None = None,
        seed: int = 0,
    ) -> "ModelProfile":
        """Create a profile mirroring ``arch``'s topology.

        ``n_blocks`` may shrink the functional block count (for fast tests)
        while the cost model keeps using the paper-scale per-block costs.
        """
        return cls(
            arch=arch,
            sim=sim or SimSpec(),
            n_blocks=n_blocks if n_blocks is not None else arch.n_blocks,
            n_experts=arch.n_experts,
            top_k=arch.top_k,
            seed=seed,
        )
