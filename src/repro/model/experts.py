"""SwiGLU expert feed-forward networks."""

from __future__ import annotations

import numpy as np

from repro.model.layers import Linear, silu


class SwiGLUExpert:
    """One expert: ``w2(silu(w1 x) * w3 x)`` as used by Mixtral-style MoEs."""

    def __init__(self, d_model: int, d_ff: int, rng: np.random.Generator) -> None:
        self.w1 = Linear(d_model, d_ff, rng)
        self.w3 = Linear(d_model, d_ff, rng)
        self.w2 = Linear(d_ff, d_model, rng)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.w2(silu(self.w1(x)) * self.w3(x))

    @property
    def n_params(self) -> int:
        """Number of parameters in the expert."""
        return self.w1.n_params + self.w2.n_params + self.w3.n_params
