"""Device, link, and platform presets used by the paper.

The derating efficiencies are calibrated so the cost model reproduces the
paper's Table I microbenchmarks (A100 + Xeon Gold 6326 over PCIe 4.0):
CPU block 8.02 ms, GPU block 1.24 ms, expert upload 39.87 ms, activation
transition 0.02 ms.  The evaluation platform (A6000 + i9-10980XE) uses the
same efficiency factors with that platform's nominal specs.
"""

from __future__ import annotations

from repro.hardware.device import GB, DeviceKind, DeviceSpec
from repro.hardware.link import LinkSpec
from repro.hardware.platform import Platform

NVIDIA_A100 = DeviceSpec(
    name="NVIDIA A100 80GB",
    kind=DeviceKind.GPU,
    peak_flops=312e12,
    mem_bandwidth=1935 * GB,
    mem_capacity=80 * GB,
    compute_efficiency=0.55,
    mem_efficiency=0.34,
    op_overhead=8e-6,
    idle_power_w=55.0,
    active_power_w=320.0,
)

NVIDIA_A6000 = DeviceSpec(
    name="NVIDIA RTX A6000 48GB",
    kind=DeviceKind.GPU,
    peak_flops=155e12,
    mem_bandwidth=768 * GB,
    mem_capacity=48 * GB,
    compute_efficiency=0.55,
    mem_efficiency=0.34,
    op_overhead=8e-6,
    idle_power_w=28.0,
    active_power_w=290.0,
)

NVIDIA_RTX4090 = DeviceSpec(
    name="NVIDIA GeForce RTX 4090 24GB",
    kind=DeviceKind.GPU,
    peak_flops=330e12,
    mem_bandwidth=1008 * GB,
    mem_capacity=24 * GB,
    compute_efficiency=0.55,
    mem_efficiency=0.34,
    op_overhead=8e-6,
    idle_power_w=25.0,
    active_power_w=420.0,
)

XEON_GOLD_6326 = DeviceSpec(
    name="Intel Xeon Gold 6326 (16c @ 2.9 GHz)",
    kind=DeviceKind.CPU,
    peak_flops=3.0e12,
    mem_bandwidth=204.8 * GB,
    mem_capacity=256 * GB,
    compute_efficiency=0.45,
    mem_efficiency=0.48,
    op_overhead=3e-6,
    idle_power_w=55.0,
    active_power_w=195.0,
)

INTEL_I9_10980XE = DeviceSpec(
    name="Intel Core i9-10980XE (18c @ 3.0 GHz)",
    kind=DeviceKind.CPU,
    peak_flops=3.4e12,
    mem_bandwidth=94 * GB,
    mem_capacity=130 * GB,
    compute_efficiency=0.45,
    mem_efficiency=0.55,
    op_overhead=3e-6,
    idle_power_w=40.0,
    active_power_w=170.0,
)

PCIE_4_X16 = LinkSpec(
    name="PCIe 4.0 x16",
    bandwidth=64 * GB,
    latency=15e-6,
    bulk_efficiency=0.14,
    activation_efficiency=0.6,
    power_w=15.0,
)


def default_platform() -> Platform:
    """The paper's evaluation platform: A6000 + i9-10980XE over PCIe 4.0."""
    return Platform(gpu=NVIDIA_A6000, cpu=INTEL_I9_10980XE, link=PCIE_4_X16,
                    base_power_w=70.0)


def paper_table1_platform() -> Platform:
    """The microbenchmark platform of Table I: A100 + Xeon Gold 6326."""
    return Platform(gpu=NVIDIA_A100, cpu=XEON_GOLD_6326, link=PCIE_4_X16,
                    base_power_w=90.0)
