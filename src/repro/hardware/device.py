"""Device specifications for the platform simulator.

A device is characterized by a roofline pair (peak compute throughput and
memory bandwidth), derating efficiencies that fold in kernel-launch and
framework overheads, a memory capacity, and a two-level power model
(idle / active).  The cost model in :mod:`repro.hardware.cost_model` turns
op shapes into latencies using these numbers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

GB = 1e9


class DeviceKind(enum.Enum):
    """Which side of the PCIe link a device sits on."""

    GPU = "gpu"
    CPU = "cpu"


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one compute device.

    Attributes:
        name: human-readable device name.
        kind: GPU or CPU.
        peak_flops: peak dense fp16 throughput in FLOP/s.
        mem_bandwidth: peak memory bandwidth in bytes/s.
        mem_capacity: memory capacity in bytes.
        compute_efficiency: achievable fraction of ``peak_flops``.
        mem_efficiency: achievable fraction of ``mem_bandwidth``.
        op_overhead: fixed per-op launch/dispatch latency in seconds.
        idle_power_w: power draw in watts when idle (board power floor).
        active_power_w: power draw in watts while executing work.
    """

    name: str
    kind: DeviceKind
    peak_flops: float
    mem_bandwidth: float
    mem_capacity: float
    compute_efficiency: float = 0.6
    mem_efficiency: float = 0.7
    op_overhead: float = 5e-6
    idle_power_w: float = 30.0
    active_power_w: float = 200.0

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.mem_bandwidth <= 0:
            raise ValueError("throughput figures must be positive")
        if not 0 < self.compute_efficiency <= 1:
            raise ValueError("compute_efficiency must be in (0, 1]")
        if not 0 < self.mem_efficiency <= 1:
            raise ValueError("mem_efficiency must be in (0, 1]")
        if self.active_power_w < self.idle_power_w:
            raise ValueError("active power cannot be below idle power")

    @property
    def effective_flops(self) -> float:
        """Sustained FLOP/s after derating."""
        return self.peak_flops * self.compute_efficiency

    @property
    def effective_bandwidth(self) -> float:
        """Sustained memory bandwidth after derating, bytes/s."""
        return self.mem_bandwidth * self.mem_efficiency

    def op_time(self, flops: float, bytes_touched: float) -> float:
        """Roofline latency of one op: max of compute and memory time."""
        compute = flops / self.effective_flops
        memory = bytes_touched / self.effective_bandwidth
        return self.op_overhead + max(compute, memory)
