"""Event-driven GPU-CPU platform simulator with an op-level cost model."""

from repro.hardware.cost_model import CostModel
from repro.hardware.device import GB, DeviceKind, DeviceSpec
from repro.hardware.energy import EnergyBreakdown, EnergyModel
from repro.hardware.link import LinkSpec
from repro.hardware.platform import Platform
from repro.hardware.presets import (
    INTEL_I9_10980XE,
    NVIDIA_A100,
    NVIDIA_A6000,
    NVIDIA_RTX4090,
    PCIE_4_X16,
    XEON_GOLD_6326,
    default_platform,
    paper_table1_platform,
)
from repro.hardware.sweeps import (
    AXES,
    run_sweep,
    scale_cpu_bandwidth,
    scale_gpu_bandwidth,
    scale_gpu_capacity,
    scale_link_bandwidth,
    sweep,
)
from repro.hardware.timeline import CPU, D2H, GPU, H2D, RESOURCES, Op, Timeline

__all__ = [
    "CostModel",
    "GB",
    "DeviceKind",
    "DeviceSpec",
    "EnergyBreakdown",
    "EnergyModel",
    "LinkSpec",
    "Platform",
    "INTEL_I9_10980XE",
    "NVIDIA_A100",
    "NVIDIA_A6000",
    "NVIDIA_RTX4090",
    "PCIE_4_X16",
    "XEON_GOLD_6326",
    "default_platform",
    "paper_table1_platform",
    "AXES",
    "run_sweep",
    "scale_cpu_bandwidth",
    "scale_gpu_bandwidth",
    "scale_gpu_capacity",
    "scale_link_bandwidth",
    "sweep",
    "CPU",
    "D2H",
    "GPU",
    "H2D",
    "RESOURCES",
    "Op",
    "Timeline",
]
