"""Op-level latency model at paper-scale dimensions.

Each inference engine executes the small functional model for *values* but
charges simulated time for every op as if the paper-scale model were
running: weights and activations sized by :class:`repro.model.config.ArchSpec`,
throughput by the :class:`repro.hardware.device.DeviceSpec` rooflines, and
transfers by the :class:`repro.hardware.link.LinkSpec`.

Decode-stage ops at batch size one are memory-bandwidth-bound (every weight
byte is read once per token); prefill ops over hundreds of tokens shift
toward the compute roof, which is why CPU prefill of a busy expert is
expensive and why the paper maps hot experts to the GPU before decode.

The same roofline yields the *batch-efficiency curves* used by gathered
cross-sequence execution (:meth:`CostModel.batch_efficiency`): a dense op
over ``n`` token rows reads its weights once instead of ``n`` times and
pays one fixed per-op overhead instead of ``n``, so in the
bandwidth-bound decode regime the gathered op costs barely more than a
solo one until ``n`` crosses into the compute-bound regime
(:meth:`CostModel.batch_crossover_tokens`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.device import DeviceSpec
from repro.hardware.link import LinkSpec
from repro.hardware.platform import Platform
from repro.model.config import ArchSpec


@dataclass(frozen=True)
class CostModel:
    """Latency/energy cost model binding an architecture to a platform."""

    arch: ArchSpec
    platform: Platform

    # ---- generic helpers -----------------------------------------------------

    @property
    def link(self) -> LinkSpec:
        """The platform's CPU<->GPU link."""
        return self.platform.link

    def _weights_op_time(self, device: DeviceSpec, weight_params: int,
                         n_tokens: int, extra_bytes: float = 0.0) -> float:
        """Roofline time of a dense op over ``weight_params`` weights."""
        flops = 2.0 * weight_params * n_tokens
        bytes_touched = (
            weight_params * self.arch.dtype_bytes
            + extra_bytes
            + 2.0 * n_tokens * self.arch.hidden_state_bytes
        )
        return device.op_time(flops, bytes_touched)

    # ---- per-op latencies ----------------------------------------------------

    def embed_time(self, device: DeviceSpec, n_tokens: int) -> float:
        """Embedding lookup for ``n_tokens`` tokens."""
        bytes_touched = n_tokens * self.arch.hidden_state_bytes * 2.0
        return device.op_time(0.0, bytes_touched)

    def non_moe_time(self, device: DeviceSpec, n_tokens: int,
                     context_len: int) -> float:
        """One block's non-MoE part: norms + attention over the KV cache."""
        attn_weight_time = self._weights_op_time(
            device, self.arch.attention_params, n_tokens
        )
        # Score/value flops against the cached context plus KV-cache traffic.
        hd = self.arch.head_dim
        score_flops = 4.0 * n_tokens * context_len * self.arch.n_heads * hd
        kv_bytes = context_len * self.arch.kv_bytes_per_token_per_block
        attn_ctx_time = device.op_time(score_flops, kv_bytes)
        return attn_weight_time + attn_ctx_time

    def gate_time(self, device: DeviceSpec, n_tokens: int) -> float:
        """Router (gating MLP) over ``n_tokens`` tokens."""
        return self._weights_op_time(device, self.arch.gate_params, n_tokens)

    def expert_time(self, device: DeviceSpec, n_tokens: int) -> float:
        """One expert FFN over ``n_tokens`` tokens."""
        return self._weights_op_time(device, self.arch.expert_params, n_tokens)

    def lm_head_time(self, device: DeviceSpec, n_tokens: int) -> float:
        """Final norm + weight-tied LM head."""
        return self._weights_op_time(
            device, self.arch.embedding_params, n_tokens
        )

    def block_time(self, device: DeviceSpec, n_tokens: int,
                   context_len: int) -> float:
        """Whole-block latency with top-k experts resident (paper Table I)."""
        return (
            self.non_moe_time(device, n_tokens, context_len)
            + self.gate_time(device, n_tokens)
            + self.arch.top_k * self.expert_time(device, n_tokens)
        )

    # ---- batch-efficiency curves ---------------------------------------------

    def batch_efficiency(self, device: DeviceSpec, weight_params: int,
                         n_tokens: int, overhead_s: float = 0.0) -> float:
        """Per-token cost of one gathered op relative to ``n_tokens`` solo ops.

        Dimensionless ratio in ``(0, 1]``: ``time(one op over n rows) /
        (n * time(one op over 1 row))``, each side optionally charged a
        fixed per-op ``overhead_s`` (seconds, e.g. the engines'
        framework dispatch overhead).  In the bandwidth-bound decode
        regime the weight bytes dominate, so a gathered op amortizes
        them across all rows and the ratio approaches ``1 / n`` plus
        the per-row activation traffic; past the compute roofline the
        flops scale with ``n`` and the curve flattens.
        """
        if n_tokens < 1:
            raise ValueError("n_tokens must be positive")
        gathered = overhead_s + self._weights_op_time(
            device, weight_params, n_tokens
        )
        solo = n_tokens * (
            overhead_s + self._weights_op_time(device, weight_params, 1)
        )
        return gathered / solo

    def expert_batch_efficiency(self, device: DeviceSpec, n_tokens: int,
                                overhead_s: float = 0.0) -> float:
        """Batch-efficiency curve of one expert FFN (see
        :meth:`batch_efficiency`)."""
        return self.batch_efficiency(
            device, self.arch.expert_params, n_tokens, overhead_s
        )

    def lm_head_batch_efficiency(self, device: DeviceSpec, n_tokens: int,
                                 overhead_s: float = 0.0) -> float:
        """Batch-efficiency curve of the LM head (see
        :meth:`batch_efficiency`)."""
        return self.batch_efficiency(
            device, self.arch.embedding_params, n_tokens, overhead_s
        )

    def attention_batch_efficiency(self, device: DeviceSpec, n_tokens: int,
                                   overhead_s: float = 0.0) -> float:
        """Batch-efficiency curve of a block's attention projections.

        Prices the weight-bound part of :meth:`non_moe_time` (the QKV/O
        projections); the per-sequence score/value work against the KV
        cache scales with each sequence's own context and never
        amortizes, so gathered prefill pricing applies this curve to the
        whole attention op as a conservative lower bound on the gain.
        """
        return self.batch_efficiency(
            device, self.arch.attention_params, n_tokens, overhead_s
        )

    def gate_batch_efficiency(self, device: DeviceSpec, n_tokens: int,
                              overhead_s: float = 0.0) -> float:
        """Batch-efficiency curve of the router MLP (see
        :meth:`batch_efficiency`)."""
        return self.batch_efficiency(
            device, self.arch.gate_params, n_tokens, overhead_s
        )

    def batch_crossover_tokens(self, device: DeviceSpec,
                               weight_params: int | None = None) -> int:
        """Row count where a dense op leaves the bandwidth-bound regime.

        The smallest ``n`` for which the compute roofline time of an op
        over ``weight_params`` weights (default: one expert FFN) meets
        or exceeds its memory roofline time — i.e. where gathering more
        rows stops being nearly free.  Returns 0 when the op never
        becomes compute-bound on this device (per-token flops time below
        per-token bytes time at any batch).
        """
        if weight_params is None:
            weight_params = self.arch.expert_params
        flops_time_per_token = 2.0 * weight_params / device.effective_flops
        bytes_time_per_token = (
            2.0 * self.arch.hidden_state_bytes / device.effective_bandwidth
        )
        gain = flops_time_per_token - bytes_time_per_token
        if gain <= 0.0:
            return 0
        fixed_bytes_time = (
            weight_params * self.arch.dtype_bytes / device.effective_bandwidth
        )
        return max(1, math.ceil(fixed_bytes_time / gain))

    # ---- transfers -----------------------------------------------------------

    def expert_transfer_time(self, quant_ratio: float = 1.0) -> float:
        """Moving one expert's weights across the link.

        ``quant_ratio`` scales the payload (e.g. 0.25 for 4-bit quantized
        transfers as used by Mixtral-Offloading).
        """
        if not 0 < quant_ratio <= 1:
            raise ValueError("quant_ratio must be in (0, 1]")
        return self.link.weight_transfer_time(
            self.arch.expert_bytes * quant_ratio
        )

    def activation_transfer_time(self, n_tokens: int) -> float:
        """Moving ``n_tokens`` hidden-state vectors across the link."""
        return self.link.activation_transfer_time(
            n_tokens * self.arch.hidden_state_bytes
        )

    def dequant_time(self, device: DeviceSpec, quant_ratio: float) -> float:
        """On-device dequantization of one expert after a quantized upload."""
        bytes_touched = self.arch.expert_bytes * (1.0 + quant_ratio)
        return device.op_time(self.arch.expert_params, bytes_touched)

    # ---- capacity ------------------------------------------------------------

    def gpu_expert_slots(self, reserve_fraction: float = 0.1) -> int:
        """Experts that fit on the GPU beside all non-MoE weights."""
        non_expert_bytes = (
            self.arch.n_blocks * self.arch.block_non_expert_bytes
            + self.arch.embedding_params * self.arch.dtype_bytes
        )
        slots = self.platform.gpu_expert_capacity(
            non_expert_bytes, self.arch.expert_bytes, reserve_fraction
        )
        return min(slots, self.arch.n_blocks * self.arch.n_experts)
