"""Event-driven execution timeline for the two-device platform.

Engines submit ops to named resources (``gpu``, ``cpu``, ``h2d``, ``d2h``);
each resource executes its ops in submission order, and an op additionally
waits for its dependencies.  This is deterministic list scheduling, which
matches how a real engine enqueues kernels on CUDA streams, CPU worker
pools, and copy engines.

The timeline records every op with its start/end time, so benchmarks can
compute makespans, per-resource utilization, and Gantt-style renderings
(paper Fig. 8), and the energy model can integrate busy time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

GPU = "gpu"
CPU = "cpu"
H2D = "h2d"
D2H = "d2h"

RESOURCES = (GPU, CPU, H2D, D2H)


@dataclass
class Op:
    """One scheduled operation on a resource.

    Attributes:
        index: submission-order identifier within the timeline.
        resource: executing lane (``gpu``/``cpu``/``h2d``/``d2h``).
        duration: busy time charged to the lane, in simulated seconds.
        start: start time in simulated seconds.
        end: completion time in simulated seconds.
        label: human-readable op label (Gantt/Chrome-trace rendering).
        kind: op category used by analysis and energy attribution.
        dep_indices: indices of the ops this op waited on (the explicit
            dependency edges given at submission; lane FIFO ordering is
            implicit and not recorded here).
    """

    index: int
    resource: str
    duration: float
    start: float
    end: float
    label: str = ""
    kind: str = ""
    dep_indices: tuple[int, ...] = ()

    def __hash__(self) -> int:
        return self.index

    def to_state_dict(self) -> dict:
        """Serialize the op for a checkpoint (all plain data)."""
        return {
            "index": self.index,
            "resource": self.resource,
            "duration": self.duration,
            "start": self.start,
            "end": self.end,
            "label": self.label,
            "kind": self.kind,
            "dep_indices": list(self.dep_indices),
        }

    @classmethod
    def from_state_dict(cls, payload: dict) -> "Op":
        """Rebuild an op captured by :meth:`to_state_dict`."""
        return cls(
            index=int(payload["index"]),
            resource=payload["resource"],
            duration=payload["duration"],
            start=payload["start"],
            end=payload["end"],
            label=payload["label"],
            kind=payload["kind"],
            dep_indices=tuple(int(i) for i in payload["dep_indices"]),
        )


@dataclass
class ResourceClock:
    """Per-lane availability state, shareable between timelines.

    A :class:`Timeline` resolves op start times against one of these.
    Each timeline owns a private clock by default; handing the *same*
    clock to several timelines makes their sequences contend for the
    same physical lanes (the continuous-batching regime): every ``add``
    call, whichever timeline it lands in, advances the shared lane in
    global submission order, exactly like concurrent sequences enqueuing
    onto one CUDA stream / copy engine.
    """

    free: dict[str, float] = field(
        default_factory=lambda: {r: 0.0 for r in RESOURCES}
    )

    def advance_all(self, t: float) -> None:
        """Fast-forward every idle lane to at least ``t``.

        Used by schedulers to model wall-clock gaps between requests
        (the system sits idle until the next arrival); lanes already
        past ``t`` are left untouched, so time never moves backwards.
        """
        for resource in self.free:
            if self.free[resource] < t:
                self.free[resource] = t

    def hold(self, resource: str, t: float) -> None:
        """Hold one lane until at least ``t`` (forward-only).

        A gathered cross-sequence kernel starts only when every
        participant's inputs are ready; the engine models that by
        holding the lane to the group's dependency barrier and then
        adding each participant's slice op.  Dependencies stay
        timeline-local (an op's ``dep_indices`` index its own
        timeline), so the cross-sequence coupling flows through the
        shared clock — never through cross-timeline dependency edges,
        which would corrupt the causality audit.  A lane already past
        ``t`` is left untouched.

        Raises:
            ValueError: for an unknown resource name.
        """
        if resource not in self.free:
            raise ValueError(f"unknown resource {resource!r}")
        if self.free[resource] < t:
            self.free[resource] = t

    @property
    def horizon(self) -> float:
        """Latest lane-availability time across all resources."""
        return max(self.free.values())

    def to_state_dict(self) -> dict:
        """Serialize the per-lane availability times."""
        return {"free": dict(self.free)}

    @classmethod
    def from_state_dict(cls, payload: dict) -> "ResourceClock":
        """Rebuild a clock captured by :meth:`to_state_dict`."""
        clock = cls()
        for resource, t in payload["free"].items():
            if resource not in clock.free:
                raise ValueError(f"unknown resource {resource!r}")
            clock.free[resource] = float(t)
        return clock


@dataclass
class Timeline:
    """Accumulates ops and resolves their start/end times on submission."""

    ops: list[Op] = field(default_factory=list)
    clock: ResourceClock = field(default_factory=ResourceClock)

    def add(self, resource: str, duration: float,
            deps: list[Op] | None = None, label: str = "",
            kind: str = "") -> Op:
        """Schedule an op; returns its handle with resolved times."""
        if resource not in self.clock.free:
            raise ValueError(f"unknown resource {resource!r}")
        if duration < 0:
            raise ValueError("duration must be non-negative")
        ready = self.clock.free[resource]
        if deps:
            ready = max(ready, max(d.end for d in deps))
        op = Op(
            index=len(self.ops),
            resource=resource,
            duration=duration,
            start=ready,
            end=ready + duration,
            label=label,
            kind=kind,
            dep_indices=tuple(d.index for d in deps) if deps else (),
        )
        self.ops.append(op)
        self.clock.free[resource] = op.end
        return op

    def rebase(self, t0: float) -> None:
        """Shift every recorded op ``t0`` seconds toward zero.

        A sequence served on a *shared* clock records absolute lane
        times; rebasing by its service-start time turns the record into
        the same sequence-local schedule a solo run would have produced
        (op 0 starts at 0, ``makespan`` is the service duration), which
        is what :class:`GenerationStats` and the energy integral expect.
        Only a finished timeline may be rebased -- the shared clock is
        deliberately left untouched, so adding ops afterwards would
        desynchronize the record.

        Raises:
            ValueError: if ``t0`` exceeds the earliest op start (a shift
                that would move an op before time zero).
        """
        if t0 == 0.0 or not self.ops:
            return
        first = min(op.start for op in self.ops)
        if t0 > first + 1e-12:
            raise ValueError(
                f"cannot rebase by {t0}: earliest op starts at {first}"
            )
        rebased = [
            Op(
                index=op.index, resource=op.resource,
                duration=op.duration, start=op.start - t0,
                end=op.end - t0, label=op.label, kind=op.kind,
                dep_indices=op.dep_indices,
            )
            for op in self.ops
        ]
        self.ops.clear()
        self.ops.extend(rebased)

    def barrier(self, deps: list[Op]) -> float:
        """Latest finish time among ``deps`` (no op is scheduled)."""
        if not deps:
            return 0.0
        return max(d.end for d in deps)

    def to_state_dict(self, include_clock: bool = True) -> dict:
        """Serialize the recorded ops (and, optionally, the clock).

        A sequence on a *shared* clock serializes ``include_clock=False``
        — the owning scheduler checkpoints the clock once and hands it
        back to every restored timeline, preserving the lane coupling.
        """
        payload = {"ops": [op.to_state_dict() for op in self.ops]}
        if include_clock:
            payload["clock"] = self.clock.to_state_dict()
        return payload

    @classmethod
    def from_state_dict(cls, payload: dict,
                        clock: ResourceClock | None = None) -> "Timeline":
        """Rebuild a timeline captured by :meth:`to_state_dict`.

        Args:
            payload: the captured state.
            clock: externally restored shared clock; ``None`` restores
                the private clock stored in the payload (or a fresh one
                if the payload carries none).
        """
        if clock is None:
            clock = (ResourceClock.from_state_dict(payload["clock"])
                     if "clock" in payload else ResourceClock())
        timeline = cls(clock=clock)
        timeline.ops.extend(
            Op.from_state_dict(op) for op in payload["ops"]
        )
        return timeline

    # ---- statistics ----------------------------------------------------------

    @property
    def makespan(self) -> float:
        """End time of the last-finishing op."""
        return max((op.end for op in self.ops), default=0.0)

    def busy_time(self, resource: str) -> float:
        """Total execution time charged to one resource."""
        return sum(op.duration for op in self.ops if op.resource == resource)

    def utilization(self, resource: str) -> float:
        """Busy fraction of one resource over the makespan."""
        span = self.makespan
        if span <= 0:
            return 0.0
        return self.busy_time(resource) / span

    def ops_on(self, resource: str) -> list[Op]:
        """All ops scheduled on one resource, in submission order."""
        return [op for op in self.ops if op.resource == resource]

    def window(self, t0: float, t1: float) -> list[Op]:
        """Ops overlapping the time window ``[t0, t1)``."""
        return [op for op in self.ops if op.start < t1 and op.end > t0]

    def render_gantt(self, t0: float = 0.0, t1: float | None = None,
                     width: int = 100) -> str:
        """ASCII Gantt chart of the window (used for paper Fig. 8)."""
        if t1 is None:
            t1 = self.makespan
        span = max(t1 - t0, 1e-12)
        lines = [f"time window: [{t0 * 1e3:.3f} ms, {t1 * 1e3:.3f} ms]"]
        for resource in RESOURCES:
            row = [" "] * width
            for op in self.ops_on(resource):
                if op.end <= t0 or op.start >= t1:
                    continue
                lo = int((max(op.start, t0) - t0) / span * width)
                hi = max(lo + 1, int((min(op.end, t1) - t0) / span * width))
                glyph = (op.label[:1] or op.kind[:1] or "#").upper()
                for i in range(lo, min(hi, width)):
                    row[i] = glyph
            lines.append(f"{resource:>4} |{''.join(row)}|")
        return "\n".join(lines)
