"""Event-driven execution timeline for the two-device platform.

Engines submit ops to named resources (``gpu``, ``cpu``, ``h2d``, ``d2h``);
each resource executes its ops in submission order, and an op additionally
waits for its dependencies.  This is deterministic list scheduling, which
matches how a real engine enqueues kernels on CUDA streams, CPU worker
pools, and copy engines.

The timeline records every op with its start/end time, so benchmarks can
compute makespans, per-resource utilization, and Gantt-style renderings
(paper Fig. 8), and the energy model can integrate busy time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

GPU = "gpu"
CPU = "cpu"
H2D = "h2d"
D2H = "d2h"

RESOURCES = (GPU, CPU, H2D, D2H)


@dataclass
class Op:
    """One scheduled operation on a resource.

    Attributes:
        index: submission-order identifier within the timeline.
        resource: executing lane (``gpu``/``cpu``/``h2d``/``d2h``).
        duration: busy time charged to the lane, in simulated seconds.
        start: start time in simulated seconds.
        end: completion time in simulated seconds.
        label: human-readable op label (Gantt/Chrome-trace rendering).
        kind: op category used by analysis and energy attribution.
        dep_indices: indices of the ops this op waited on (the explicit
            dependency edges given at submission; lane FIFO ordering is
            implicit and not recorded here).
    """

    index: int
    resource: str
    duration: float
    start: float
    end: float
    label: str = ""
    kind: str = ""
    dep_indices: tuple[int, ...] = ()

    def __hash__(self) -> int:
        return self.index


@dataclass
class Timeline:
    """Accumulates ops and resolves their start/end times on submission."""

    ops: list[Op] = field(default_factory=list)
    _resource_free: dict[str, float] = field(
        default_factory=lambda: {r: 0.0 for r in RESOURCES}
    )

    def add(self, resource: str, duration: float,
            deps: list[Op] | None = None, label: str = "",
            kind: str = "") -> Op:
        """Schedule an op; returns its handle with resolved times."""
        if resource not in self._resource_free:
            raise ValueError(f"unknown resource {resource!r}")
        if duration < 0:
            raise ValueError("duration must be non-negative")
        ready = self._resource_free[resource]
        if deps:
            ready = max(ready, max(d.end for d in deps))
        op = Op(
            index=len(self.ops),
            resource=resource,
            duration=duration,
            start=ready,
            end=ready + duration,
            label=label,
            kind=kind,
            dep_indices=tuple(d.index for d in deps) if deps else (),
        )
        self.ops.append(op)
        self._resource_free[resource] = op.end
        return op

    def barrier(self, deps: list[Op]) -> float:
        """Latest finish time among ``deps`` (no op is scheduled)."""
        if not deps:
            return 0.0
        return max(d.end for d in deps)

    # ---- statistics ----------------------------------------------------------

    @property
    def makespan(self) -> float:
        """End time of the last-finishing op."""
        return max((op.end for op in self.ops), default=0.0)

    def busy_time(self, resource: str) -> float:
        """Total execution time charged to one resource."""
        return sum(op.duration for op in self.ops if op.resource == resource)

    def utilization(self, resource: str) -> float:
        """Busy fraction of one resource over the makespan."""
        span = self.makespan
        if span <= 0:
            return 0.0
        return self.busy_time(resource) / span

    def ops_on(self, resource: str) -> list[Op]:
        """All ops scheduled on one resource, in submission order."""
        return [op for op in self.ops if op.resource == resource]

    def window(self, t0: float, t1: float) -> list[Op]:
        """Ops overlapping the time window ``[t0, t1)``."""
        return [op for op in self.ops if op.start < t1 and op.end > t0]

    def render_gantt(self, t0: float = 0.0, t1: float | None = None,
                     width: int = 100) -> str:
        """ASCII Gantt chart of the window (used for paper Fig. 8)."""
        if t1 is None:
            t1 = self.makespan
        span = max(t1 - t0, 1e-12)
        lines = [f"time window: [{t0 * 1e3:.3f} ms, {t1 * 1e3:.3f} ms]"]
        for resource in RESOURCES:
            row = [" "] * width
            for op in self.ops_on(resource):
                if op.end <= t0 or op.start >= t1:
                    continue
                lo = int((max(op.start, t0) - t0) / span * width)
                hi = max(lo + 1, int((min(op.end, t1) - t0) / span * width))
                glyph = (op.label[:1] or op.kind[:1] or "#").upper()
                for i in range(lo, min(hi, width)):
                    row[i] = glyph
            lines.append(f"{resource:>4} |{''.join(row)}|")
        return "\n".join(lines)
