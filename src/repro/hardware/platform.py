"""A GPU + CPU platform joined by a PCIe link."""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.device import DeviceKind, DeviceSpec
from repro.hardware.link import LinkSpec


@dataclass(frozen=True)
class Platform:
    """The simulated inference platform.

    Attributes:
        gpu: the accelerator device.
        cpu: the host device (also owns host memory for offloaded experts).
        link: the CPU<->GPU interconnect.
        base_power_w: constant platform power in watts (DRAM, fans,
            VRMs, ...) added on top of the per-device power model when
            integrating energy.
    """

    gpu: DeviceSpec
    cpu: DeviceSpec
    link: LinkSpec
    base_power_w: float = 60.0

    def __post_init__(self) -> None:
        if self.gpu.kind is not DeviceKind.GPU:
            raise ValueError("gpu spec must have kind GPU")
        if self.cpu.kind is not DeviceKind.CPU:
            raise ValueError("cpu spec must have kind CPU")

    def device(self, kind: DeviceKind) -> DeviceSpec:
        """Look up the device spec for a :class:`DeviceKind`."""
        return self.gpu if kind is DeviceKind.GPU else self.cpu

    def gpu_expert_capacity(self, non_expert_bytes: float,
                            expert_bytes: float,
                            reserve_fraction: float = 0.1) -> int:
        """How many experts fit on the GPU next to the non-MoE weights.

        ``reserve_fraction`` of GPU memory is held back for the KV cache and
        activations, mirroring real deployments.
        """
        usable = self.gpu.mem_capacity * (1.0 - reserve_fraction)
        free = usable - non_expert_bytes
        if free <= 0:
            return 0
        return int(free // expert_bytes)
