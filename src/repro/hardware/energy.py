"""Platform energy accounting over an executed timeline.

Each device draws ``idle_power_w`` for the whole makespan plus
``active_power_w - idle_power_w`` while executing ops; the link draws its
incremental power during transfers; the platform adds a constant base
draw.  This mirrors how the paper measures whole-platform wall power with
an external meter and reports tokens per kilojoule (Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.platform import Platform
from repro.hardware.timeline import CPU, D2H, GPU, H2D, Timeline


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy attributed to each platform component.

    Attributes:
        gpu_j: GPU energy in joules.
        cpu_j: CPU energy in joules.
        link_j: interconnect (PCIe transfer) energy in joules.
        base_j: platform base-power energy in joules.
    """

    gpu_j: float
    cpu_j: float
    link_j: float
    base_j: float

    @property
    def total_j(self) -> float:
        """Total platform energy in joules."""
        return self.gpu_j + self.cpu_j + self.link_j + self.base_j

    @property
    def total_kj(self) -> float:
        """Total platform energy in kilojoules."""
        return self.total_j / 1e3

    def to_state_dict(self) -> dict:
        """Serialize the breakdown for a checkpoint."""
        return {
            "gpu_j": self.gpu_j,
            "cpu_j": self.cpu_j,
            "link_j": self.link_j,
            "base_j": self.base_j,
        }

    @classmethod
    def from_state_dict(cls, payload: dict) -> "EnergyBreakdown":
        """Rebuild a breakdown captured by :meth:`to_state_dict`."""
        return cls(
            gpu_j=payload["gpu_j"],
            cpu_j=payload["cpu_j"],
            link_j=payload["link_j"],
            base_j=payload["base_j"],
        )


class EnergyModel:
    """Integrates platform power over a timeline."""

    def __init__(self, platform: Platform) -> None:
        self.platform = platform

    def energy(self, timeline: Timeline) -> EnergyBreakdown:
        """Energy consumed executing ``timeline`` to completion."""
        span = timeline.makespan
        gpu = self.platform.gpu
        cpu = self.platform.cpu
        gpu_j = gpu.idle_power_w * span + (
            gpu.active_power_w - gpu.idle_power_w
        ) * timeline.busy_time(GPU)
        cpu_j = cpu.idle_power_w * span + (
            cpu.active_power_w - cpu.idle_power_w
        ) * timeline.busy_time(CPU)
        link_busy = timeline.busy_time(H2D) + timeline.busy_time(D2H)
        link_j = self.platform.link.power_w * link_busy
        base_j = self.platform.base_power_w * span
        return EnergyBreakdown(
            gpu_j=gpu_j, cpu_j=cpu_j, link_j=link_j, base_j=base_j
        )

    def average_power_w(self, timeline: Timeline) -> float:
        """Mean platform power over the timeline's makespan."""
        span = timeline.makespan
        if span <= 0:
            return 0.0
        return self.energy(timeline).total_j / span
