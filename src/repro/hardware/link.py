"""PCIe interconnect model.

Transfers are modeled as latency plus size over an *effective* bandwidth.
Two efficiency factors exist because bulk expert-weight transfers from
pageable host memory achieve a far smaller fraction of the nominal PCIe
bandwidth than small pinned activation transfers do -- the paper's Table I
measures 352 MB expert uploads at ~8.8 GB/s on a 64 GB/s PCIe 4.0 link.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinkSpec:
    """Point-to-point CPU<->GPU link.

    Attributes:
        name: link name, e.g. ``"PCIe 4.0 x16"``.
        bandwidth: nominal unidirectional bandwidth in bytes/s.
        latency: per-transfer setup latency in seconds.
        bulk_efficiency: achieved fraction of nominal bandwidth for large
            pageable weight transfers.
        activation_efficiency: achieved fraction for small activation
            transfers (dominated by ``latency`` anyway).
        power_w: incremental power draw in watts while a transfer is in
            flight.
    """

    name: str
    bandwidth: float
    latency: float = 15e-6
    bulk_efficiency: float = 0.14
    activation_efficiency: float = 0.6
    power_w: float = 15.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0 < self.bulk_efficiency <= 1:
            raise ValueError("bulk_efficiency must be in (0, 1]")
        if not 0 < self.activation_efficiency <= 1:
            raise ValueError("activation_efficiency must be in (0, 1]")

    def weight_transfer_time(self, n_bytes: float) -> float:
        """Latency of a bulk weight transfer of ``n_bytes``."""
        return self.latency + n_bytes / (self.bandwidth * self.bulk_efficiency)

    def activation_transfer_time(self, n_bytes: float) -> float:
        """Latency of a small activation transfer of ``n_bytes``."""
        return self.latency + n_bytes / (
            self.bandwidth * self.activation_efficiency
        )
