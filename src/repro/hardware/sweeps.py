"""Platform sensitivity sweeps.

Hardware-design studies ask "how does the conclusion move as a device
parameter scales?".  These helpers derive platform variants from a base
platform by scaling one parameter at a time (link bandwidth, CPU memory
bandwidth, GPU memory bandwidth, GPU memory capacity), keeping everything
else fixed, so a benchmark can sweep the axis and locate crossovers such
as the paper's §VI-A applicability boundary.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable

from repro.hardware.platform import Platform

PlatformTransform = Callable[[Platform, float], Platform]


def scale_link_bandwidth(platform: Platform, factor: float) -> Platform:
    """Platform with the CPU<->GPU link bandwidth scaled by ``factor``."""
    _check(factor)
    link = dataclasses.replace(
        platform.link,
        bandwidth=platform.link.bandwidth * factor,
        name=f"{platform.link.name} x{factor:g}",
    )
    return dataclasses.replace(platform, link=link)


def scale_cpu_bandwidth(platform: Platform, factor: float) -> Platform:
    """Platform with the CPU's memory bandwidth scaled by ``factor``."""
    _check(factor)
    cpu = dataclasses.replace(
        platform.cpu, mem_bandwidth=platform.cpu.mem_bandwidth * factor
    )
    return dataclasses.replace(platform, cpu=cpu)


def scale_gpu_bandwidth(platform: Platform, factor: float) -> Platform:
    """Platform with the GPU's memory bandwidth scaled by ``factor``."""
    _check(factor)
    gpu = dataclasses.replace(
        platform.gpu, mem_bandwidth=platform.gpu.mem_bandwidth * factor
    )
    return dataclasses.replace(platform, gpu=gpu)


def scale_gpu_capacity(platform: Platform, factor: float) -> Platform:
    """Platform with the GPU's memory capacity scaled by ``factor``."""
    _check(factor)
    gpu = dataclasses.replace(
        platform.gpu, mem_capacity=platform.gpu.mem_capacity * factor
    )
    return dataclasses.replace(platform, gpu=gpu)


AXES: dict[str, PlatformTransform] = {
    "link_bandwidth": scale_link_bandwidth,
    "cpu_bandwidth": scale_cpu_bandwidth,
    "gpu_bandwidth": scale_gpu_bandwidth,
    "gpu_capacity": scale_gpu_capacity,
}


def _check(factor: float) -> None:
    if factor <= 0:
        raise ValueError("scale factor must be positive")


def sweep(base: Platform, axis: str,
          factors: Iterable[float]) -> list[tuple[float, Platform]]:
    """Platform variants along one axis, one per scale factor."""
    try:
        transform = AXES[axis]
    except KeyError:
        raise KeyError(f"unknown axis {axis!r}; known: {sorted(AXES)}")
    return [(float(f), transform(base, float(f))) for f in factors]


def run_sweep(base: Platform, axis: str, factors: Iterable[float],
              measure: Callable[[Platform], float],
              model=None, compute_cache=None) -> dict[float, float]:
    """Evaluate ``measure`` on each variant; returns factor -> value.

    Platform scaling changes op *durations* only — the functional math is
    identical at every sweep point.  Passing a ``model`` (any object with
    ``attach_compute_cache``/``detach_compute_cache``, i.e. a
    ``repro.model.MoETransformer``) together with a ``compute_cache``
    (``repro.perf.TensorCache``) therefore lets every point after the
    first reuse the first point's forward computations; the cache is
    detached again when the sweep finishes.
    """
    if (model is None) != (compute_cache is None):
        raise ValueError("model and compute_cache must be passed together")
    if model is not None:
        model.attach_compute_cache(compute_cache)
    try:
        return {
            factor: measure(platform)
            for factor, platform in sweep(base, axis, factors)
        }
    finally:
        if model is not None:
            model.detach_compute_cache()
