"""Plain-text table rendering for benchmark reports.

The benchmark harness prints the same rows/columns the paper's tables and
figures report; this module keeps the formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render an aligned monospace table."""
    rendered_rows = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_fmt.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rendered_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object],
                  ys: Sequence[float], x_label: str = "x",
                  y_fmt: str = "{:.2f}") -> str:
    """Render one figure series as ``name: x=y`` pairs."""
    pairs = ", ".join(
        f"{x}={y_fmt.format(y)}" for x, y in zip(xs, ys)
    )
    return f"{name} [{x_label}]: {pairs}"
