"""Aggregated throughput / energy summaries over multiple generations."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import GenerationResult


@dataclass(frozen=True)
class PerformanceSummary:
    """Mean simulated performance over a batch of generations."""

    engine: str
    n_sequences: int
    tokens_per_second: float
    decode_tokens_per_second: float
    tokens_per_kilojoule: float
    average_power_w: float
    gpu_hit_rate: float
    cpu_expert_execs: float
    expert_uploads: float


def summarize_results(engine_name: str,
                      results: list[GenerationResult]) -> PerformanceSummary:
    """Aggregate per-sequence stats into one summary row.

    Rates are computed from totals (total tokens / total time), matching
    how a sustained-serving measurement would average.
    """
    if not results:
        raise ValueError("no results to summarize")
    total_tokens = sum(r.stats.n_generated for r in results)
    # The first token of each generation comes from prefill logits, so the
    # decode window only produced n_generated - 1 tokens per sequence.
    decode_tokens = sum(max(r.stats.n_generated - 1, 0) for r in results)
    total_time = sum(r.stats.total_time_s for r in results)
    total_decode = sum(r.stats.decode_time_s for r in results)
    total_kj = sum(r.stats.energy.total_kj for r in results)
    total_j = sum(r.stats.energy.total_j for r in results)
    return PerformanceSummary(
        engine=engine_name,
        n_sequences=len(results),
        tokens_per_second=total_tokens / total_time if total_time else 0.0,
        decode_tokens_per_second=(
            decode_tokens / total_decode if total_decode else 0.0
        ),
        tokens_per_kilojoule=total_tokens / total_kj if total_kj else 0.0,
        average_power_w=total_j / total_time if total_time else 0.0,
        gpu_hit_rate=float(
            np.mean([r.stats.counters.gpu_hit_rate for r in results])
        ),
        cpu_expert_execs=float(
            np.mean([r.stats.counters.cpu_expert_execs for r in results])
        ),
        expert_uploads=float(
            np.mean([r.stats.counters.expert_uploads for r in results])
        ),
    )
