"""Performance metrics aggregation and report formatting."""

from repro.metrics.plots import bar_chart, line_plot, sparkline
from repro.metrics.report import format_series, format_table
from repro.metrics.throughput import PerformanceSummary, summarize_results

__all__ = [
    "bar_chart",
    "line_plot",
    "sparkline",
    "format_series",
    "format_table",
    "PerformanceSummary",
    "summarize_results",
]
