"""ASCII chart rendering for benchmark reports and the CLI.

Terminal-friendly bar charts and line plots so the figure benchmarks can
show the paper's figures' shapes directly in test output without any
plotting dependency.
"""

from __future__ import annotations

from typing import Sequence


def bar_chart(labels: Sequence[str], values: Sequence[float],
              width: int = 50, title: str | None = None,
              value_fmt: str = "{:.2f}") -> str:
    """Horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return title or ""
    peak = max(max(values), 1e-12)
    label_width = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        n = int(round(width * value / peak)) if value > 0 else 0
        bar = "#" * n
        lines.append(
            f"{str(label):>{label_width}} |{bar:<{width}}| "
            f"{value_fmt.format(value)}"
        )
    return "\n".join(lines)


def line_plot(xs: Sequence[float], series: dict[str, Sequence[float]],
              height: int = 12, width: int = 60,
              title: str | None = None) -> str:
    """Multi-series scatter/line plot on a character grid.

    Each series gets the first letter of its name as the plot glyph.
    """
    if not series:
        return title or ""
    n_points = len(xs)
    for name, ys in series.items():
        if len(ys) != n_points:
            raise ValueError(f"series {name!r} length mismatch")
    all_values = [v for ys in series.values() for v in ys]
    lo, hi = min(all_values), max(all_values)
    if hi == lo:
        hi = lo + 1.0
    x_lo, x_hi = min(xs), max(xs)
    x_span = (x_hi - x_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for name, ys in series.items():
        glyph = name[0].upper()
        for x, y in zip(xs, ys):
            col = int((x - x_lo) / x_span * (width - 1))
            row = int((hi - y) / (hi - lo) * (height - 1))
            grid[row][col] = glyph

    lines = [title] if title else []
    for i, row in enumerate(grid):
        y_value = hi - (hi - lo) * i / (height - 1)
        prefix = f"{y_value:8.2f} |" if i % 3 == 0 else "         |"
        lines.append(prefix + "".join(row))
    lines.append("         +" + "-" * width)
    lines.append(f"          x: {x_lo:g} .. {x_hi:g}   series: "
                 + ", ".join(f"{name[0].upper()}={name}"
                             for name in series))
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line sparkline of a value series."""
    glyphs = "▁▂▃▄▅▆▇█"
    values = list(values)
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    return "".join(
        glyphs[int((v - lo) / span * (len(glyphs) - 1))] for v in values
    )
