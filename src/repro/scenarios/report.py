"""Scenario run artifacts: joined serving records plus a content digest.

A :class:`ScenarioReport` is the JSON artifact a scenario run produces:
every served request annotated with its scenario metadata (tenant, SLO
class, dataset, session), aggregate metrics overall and broken out per
tenant and per SLO class, and a deterministic
:meth:`~ScenarioReport.content_digest` over the canonical rendering —
two runs of the same scenario are byte-diffable, and replaying a pinned
workload must reproduce the digest exactly.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

import numpy as np

from repro.workloads.requests import slo_targets


def _percentile(values, q: float) -> float:
    """``np.percentile`` returning 0.0 on empty input (renderable groups)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return 0.0
    return float(np.percentile(arr, q))


@dataclass(frozen=True)
class ScenarioRequestRecord:
    """One served request joined with its scenario metadata.

    Attributes:
        request_id: scenario-level request identifier.
        tenant: tenant the request belongs to.
        slo_class: the request's SLO class.
        dataset: dataset its tokens were drawn from.
        session: session id for prefix-reuse tenants, or None.
        arrival_s: arrival time in simulated seconds.
        queue_delay_s: seconds spent waiting for an engine.
        ttft_s: time to first token in seconds, from arrival.
        tpot_s: time per output token in seconds during decode.
        latency_s: end-to-end seconds from arrival to last token.
        n_prompt_tokens: prompt length.
        n_generated: generated-token count.
        energy_j: generation energy in joules.
        slo_met: whether the request met its class's latency targets.
    """

    request_id: int
    tenant: str
    slo_class: str
    dataset: str
    session: int | None
    arrival_s: float
    queue_delay_s: float
    ttft_s: float
    tpot_s: float
    latency_s: float
    n_prompt_tokens: int
    n_generated: int
    energy_j: float
    slo_met: bool


@dataclass(frozen=True)
class ScenarioRejection:
    """One request dropped before service (cluster admission control).

    Attributes:
        request_id: scenario-level request identifier.
        tenant: tenant the request belonged to.
        slo_class: the request's SLO class.
        arrival_s: arrival time in simulated seconds.
        reason: admission-control verdict (``shed`` / ``expired``).
    """

    request_id: int
    tenant: str
    slo_class: str
    arrival_s: float
    reason: str


def classify_slo(slo_class: str, ttft_s: float, tpot_s: float) -> bool:
    """Whether one request's latencies meet its SLO class's targets."""
    ttft_target, tpot_target = slo_targets(slo_class)
    return ttft_s <= ttft_target and tpot_s <= tpot_target


@dataclass
class ScenarioReport:
    """Aggregate artifact of one scenario run."""

    scenario: str
    engine: str
    mode: str
    seed: int
    backend_mode: str = ""
    concurrency: int = 1
    requests: list = field(default_factory=list)
    rejected: list = field(default_factory=list)

    @property
    def n_served(self) -> int:
        """Requests that completed service."""
        return len(self.requests)

    @property
    def n_offered(self) -> int:
        """Every request the scenario offered, served or not."""
        return len(self.requests) + len(self.rejected)

    @property
    def makespan_s(self) -> float:
        """Simulated seconds from first arrival to last completion."""
        arrivals = [r.arrival_s for r in self.requests]
        arrivals += [r.arrival_s for r in self.rejected]
        if not arrivals or not self.requests:
            return 0.0
        finishes = [r.arrival_s + r.latency_s for r in self.requests]
        return max(finishes) - min(arrivals)

    def _group_summary(self, served, dropped) -> dict:
        """Aggregate metrics of one request subset (stable key order)."""
        offered = len(served) + len(dropped)
        met = sum(1 for r in served if r.slo_met)
        span = self.makespan_s
        generated = sum(r.n_generated for r in served)
        return {
            "offered": offered,
            "served": len(served),
            "rejected": len(dropped),
            "slo_attainment": (met / offered) if offered else 0.0,
            "generated_tokens": generated,
            "throughput_tokens_per_s": (generated / span) if span > 0
            else 0.0,
            "ttft_p50_s": _percentile([r.ttft_s for r in served], 50),
            "ttft_p95_s": _percentile([r.ttft_s for r in served], 95),
            "tpot_p50_s": _percentile([r.tpot_s for r in served], 50),
            "latency_p95_s": _percentile(
                [r.latency_s for r in served], 95
            ),
            "mean_queue_delay_s": (
                float(np.mean([r.queue_delay_s for r in served]))
                if served else 0.0
            ),
        }

    def _breakdown(self, key) -> dict:
        """Per-group summaries keyed by ``key(record)`` (sorted keys)."""
        groups = sorted(
            {key(r) for r in self.requests}
            | {key(r) for r in self.rejected}
        )
        return {
            name: self._group_summary(
                [r for r in self.requests if key(r) == name],
                [r for r in self.rejected if key(r) == name],
            )
            for name in groups
        }

    def per_tenant(self) -> dict:
        """Aggregate metrics broken out per tenant."""
        return self._breakdown(lambda r: r.tenant)

    def per_slo_class(self) -> dict:
        """Aggregate metrics broken out per SLO class."""
        return self._breakdown(lambda r: r.slo_class)

    def to_dict(self) -> dict:
        """Plain-data view of the report (stable field ordering)."""
        return {
            "scenario": self.scenario,
            "engine": self.engine,
            "mode": self.mode,
            "seed": self.seed,
            # Backend execution knobs are part of the report identity:
            # two runs that schedule differently (gathered vs
            # interleaved kernels, different admission width) must never
            # alias to one digest even when their metrics happen to tie.
            "backend": {
                "mode": self.backend_mode,
                "concurrency": self.concurrency,
            },
            "summary": {
                "makespan_s": self.makespan_s,
                **self._group_summary(self.requests, self.rejected),
            },
            "per_tenant": self.per_tenant(),
            "per_slo_class": self.per_slo_class(),
            "requests": [
                {
                    "request_id": r.request_id,
                    "tenant": r.tenant,
                    "slo_class": r.slo_class,
                    "dataset": r.dataset,
                    "session": r.session,
                    "arrival_s": r.arrival_s,
                    "queue_delay_s": r.queue_delay_s,
                    "ttft_s": r.ttft_s,
                    "tpot_s": r.tpot_s,
                    "latency_s": r.latency_s,
                    "n_prompt_tokens": r.n_prompt_tokens,
                    "n_generated": r.n_generated,
                    "energy_j": r.energy_j,
                    "slo_met": r.slo_met,
                }
                for r in self.requests
            ],
            "rejected": [
                {
                    "request_id": r.request_id,
                    "tenant": r.tenant,
                    "slo_class": r.slo_class,
                    "arrival_s": r.arrival_s,
                    "reason": r.reason,
                }
                for r in self.rejected
            ],
        }

    def content_digest(self) -> str:
        """Hex digest of the canonical report rendering.

        Two scenario runs are equivalent iff their digests match: the
        digest covers every request record and aggregate, so it detects
        any drift in tokens served, scheduling, or metric computation.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]

    def to_json(self, indent: int = 2) -> str:
        """Deterministic JSON rendering, digest included."""
        payload = self.to_dict()
        payload["digest"] = self.content_digest()
        return json.dumps(payload, indent=indent, sort_keys=True)


def diff_reports(a: ScenarioReport, b: ScenarioReport) -> list:
    """Human-readable differences between two scenario reports.

    Returns an empty list when the reports' content digests match;
    otherwise one line per differing top-level summary metric plus a
    per-request token/latency mismatch count — the ``repro scenarios
    compare`` primitive.
    """
    if a.content_digest() == b.content_digest():
        return []
    lines = [f"digest: {a.content_digest()} != {b.content_digest()}"]
    summary_a = a.to_dict()["summary"]
    summary_b = b.to_dict()["summary"]
    for key in summary_a:
        if summary_a[key] != summary_b[key]:
            lines.append(f"summary.{key}: {summary_a[key]!r} != "
                         f"{summary_b[key]!r}")
    ids_a = {r.request_id: r for r in a.requests}
    ids_b = {r.request_id: r for r in b.requests}
    only_a = sorted(set(ids_a) - set(ids_b))
    only_b = sorted(set(ids_b) - set(ids_a))
    if only_a:
        lines.append(f"requests only in first: {only_a}")
    if only_b:
        lines.append(f"requests only in second: {only_b}")
    mismatched = [
        rid for rid in sorted(set(ids_a) & set(ids_b))
        if (ids_a[rid].latency_s, ids_a[rid].n_generated)
        != (ids_b[rid].latency_s, ids_b[rid].n_generated)
    ]
    if mismatched:
        lines.append(
            f"{len(mismatched)} shared request(s) differ in "
            f"latency/tokens: {mismatched[:8]}"
        )
    return lines
