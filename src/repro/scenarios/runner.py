"""Scenario materialization and end-to-end execution.

:class:`ScenarioRunner` turns a declarative
:class:`~repro.scenarios.spec.ScenarioSpec` into a fully-materialized
:class:`~repro.workloads.requests.RequestSpec` list — deterministically,
keyed only on ``(spec, seed)`` — and drives any serving backend that
exposes ``run_requests(specs)`` (``ServingSimulator`` for one engine,
``ClusterSimulator`` for a fleet; the runner never imports either, the
same duck-typed decoupling ``repro.model`` uses for the compute cache).
The joined result is a :class:`~repro.scenarios.report.ScenarioReport`
whose content digest makes two runs diffable.

Materialization rules:

- arrivals come from the spec's arrival process under a scenario-scoped
  seeded RNG;
- each request draws its tenant from the weighted mix, then its prompt
  and output lengths from that tenant's distributions;
- a tenant with ``n_distinct`` reuses whole requests round-robin from a
  pool of that many distinct samples (similarity-clustered traffic);
- a session tenant groups consecutive requests into sessions that share
  a ``prefix_len``-token prompt prefix, each request appending its own
  fresh suffix (multi-turn reuse);
- ``fast=True`` caps the request count and token lengths for smoke runs
  (CI) while keeping full determinism.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.scenarios.report import (
    ScenarioRejection,
    ScenarioReport,
    ScenarioRequestRecord,
    classify_slo,
)
from repro.scenarios.spec import ScenarioSpec
from repro.workloads.datasets import get_dataset
from repro.workloads.generator import SequenceGenerator
from repro.workloads.requests import RequestSpec

#: ``sample_idx`` namespace offset for session prefix draws, so prefix
#: samples never collide with per-request suffix samples.
_PREFIX_SAMPLE_BASE = 1_000_000

#: Per-tenant session-id stride, so session ids stay globally unique.
_SESSION_STRIDE = 100_000


@dataclass
class ScenarioSession:
    """Resumable state of one scenario run.

    Pairs the materialized request list with the backend's own session
    object; the runner threads both through ``tick``/``finish`` and the
    backend handles all checkpointable state (the request list itself is
    re-materialized deterministically from ``(spec, seed)`` on resume).
    """

    specs: list
    backend: object


class ScenarioRunner:
    """Materialize and execute one scenario.

    Args:
        spec: the scenario to run.
        vocab: the model's :class:`~repro.model.vocab.TopicVocabulary`
            (token content must match the engine under test).
        seed: scenario seed; ``(spec, seed)`` fully determines the
            request list.
        fast: smoke mode — caps the request count at ``fast_requests``
            and every sampled token length at ``fast_max_len``.
        fast_requests: request-count cap applied when ``fast`` is set.
        fast_max_len: token-length cap applied when ``fast`` is set.
    """

    def __init__(self, spec: ScenarioSpec, vocab, seed: int = 0,
                 fast: bool = False, fast_requests: int = 6,
                 fast_max_len: int = 12) -> None:
        if fast_requests < 1 or fast_max_len < 2:
            raise ValueError("fast caps must be positive (max_len >= 2)")
        self.spec = spec
        self.vocab = vocab
        self.seed = seed
        self.fast = fast
        self.fast_requests = fast_requests
        self.fast_max_len = fast_max_len

    # ---- materialization -------------------------------------------------------

    def _scenario_rng(self) -> np.random.Generator:
        """The scenario-scoped RNG (tenant mix, lengths, arrivals)."""
        return np.random.default_rng(np.random.SeedSequence(
            [self.seed, zlib.crc32(self.spec.name.encode()) & 0xFFFF]
        ))

    def _tenant_generator(self, tenant) -> SequenceGenerator:
        """The per-tenant sequence generator (independent token stream)."""
        tenant_seed = (self.seed * 100_003
                       + zlib.crc32(tenant.name.encode())) & 0x7FFFFFFF
        return SequenceGenerator(get_dataset(tenant.dataset), self.vocab,
                                 seed=tenant_seed)

    def _clamp(self, length: int) -> int:
        """Apply the fast-mode token-length cap."""
        if self.fast:
            return max(2, min(length, self.fast_max_len))
        return int(length)

    def build_requests(self) -> list:
        """Materialize the scenario's request list (deterministic)."""
        rng = self._scenario_rng()
        n = self.spec.arrival.n_requests
        if self.fast:
            n = min(n, self.fast_requests)
        arrivals = self.spec.arrival.generate(rng, n_requests=n)
        tenants = self.spec.tenants
        assignment = rng.choice(len(tenants), size=n,
                                p=self.spec.tenant_weights)
        generators = {t.name: self._tenant_generator(t) for t in tenants}
        ordinals = {t.name: 0 for t in tenants}
        distinct_pool = {t.name: {} for t in tenants}
        specs = []
        for i in range(n):
            tenant = tenants[int(assignment[i])]
            prompt_len = self._clamp(tenant.prompt_len.sample(rng))
            output_len = self._clamp(tenant.output_len.sample(rng))
            ordinal = ordinals[tenant.name]
            ordinals[tenant.name] = ordinal + 1
            generator = generators[tenant.name]
            session_id = None
            if tenant.session is not None:
                prompt, forced, sample_idx, session_id = \
                    self._session_request(tenant, generator, ordinal,
                                          prompt_len, output_len)
                session_id += _SESSION_STRIDE * int(assignment[i])
            elif tenant.n_distinct is not None:
                key = ordinal % tenant.n_distinct
                pool = distinct_pool[tenant.name]
                if key not in pool:
                    sequence = generator.sample_sequence(
                        prompt_len, output_len, sample_idx=key
                    )
                    pool[key] = (sequence.prompt_tokens,
                                 sequence.continuation_tokens,
                                 output_len)
                prompt, forced, output_len = pool[key]
                sample_idx = key
            else:
                sequence = generator.sample_sequence(
                    prompt_len, output_len, sample_idx=ordinal
                )
                prompt = sequence.prompt_tokens
                forced = sequence.continuation_tokens
                sample_idx = ordinal
            specs.append(RequestSpec(
                request_id=i,
                arrival_s=float(arrivals[i]),
                prompt_tokens=prompt,
                output_len=int(output_len),
                forced_tokens=forced,
                dataset=tenant.dataset,
                tenant=tenant.name,
                slo_class=tenant.slo_class,
                session=session_id,
                sample_idx=int(sample_idx),
            ))
        return specs

    def _session_request(self, tenant, generator, ordinal: int,
                         prompt_len: int, output_len: int):
        """Prompt/forced tokens of one session-tenant request.

        The request's prompt is the session's shared prefix (sampled
        once per session from a dedicated ``sample_idx`` namespace)
        followed by the request's own suffix, with the suffix's BOS
        dropped so the combined prompt has exactly one BOS at position
        zero.
        """
        session_ordinal = ordinal // tenant.session.requests_per_session
        prefix_len = self._clamp(tenant.session.prefix_len)
        prefix = generator.sample_sequence(
            prefix_len, 0,
            sample_idx=_PREFIX_SAMPLE_BASE + session_ordinal,
        )
        suffix = generator.sample_sequence(
            prompt_len, output_len, sample_idx=ordinal
        )
        prompt = np.concatenate(
            [prefix.prompt_tokens, suffix.prompt_tokens[1:]]
        )
        return (prompt, suffix.continuation_tokens, ordinal,
                session_ordinal)

    # ---- execution -------------------------------------------------------------

    def run(self, simulator, requests: list | None = None) -> ScenarioReport:
        """Serve the scenario through a simulator; returns the report.

        Composed from the resumable lifecycle — :meth:`begin`,
        :meth:`tick` to drain, :meth:`finish` — so an uninterrupted run
        and a checkpoint/resume run flow through identical code.

        Args:
            simulator: any backend exposing the session lifecycle
                (``begin_session`` / ``tick`` / ``finish_session``) and
                returning a report with per-request records carrying
                ``request_id`` (``ServingSimulator`` or
                ``ClusterSimulator``).
            requests: pre-materialized request list — pass the output of
                :func:`repro.workloads.replay.load_request_specs` to
                replay a pinned workload bit-exactly; None materializes
                fresh from the spec.
        """
        session = self.begin(simulator, requests=requests)
        while self.tick(simulator, session):
            pass
        return self.finish(simulator, session)

    def begin(self, simulator, requests: list | None = None) -> ScenarioSession:
        """Materialize the workload and open a backend session."""
        specs = self.build_requests() if requests is None else requests
        return ScenarioSession(
            specs=specs,
            backend=simulator.begin_session(specs),
        )

    def resume(self, simulator, checkpoint,
               requests: list | None = None) -> ScenarioSession:
        """Reopen a session from a backend checkpoint.

        The request list is re-materialized deterministically from
        ``(spec, seed)`` (or passed in for pinned replays) — it is not
        part of the checkpoint, which carries only the backend's
        progress through it.
        """
        specs = self.build_requests() if requests is None else requests
        return ScenarioSession(
            specs=specs,
            backend=simulator.restore(checkpoint),
        )

    def tick(self, simulator, session: ScenarioSession) -> bool:
        """Advance the backend one step; ``False`` once drained."""
        return simulator.tick(session.backend)

    def finish(self, simulator, session: ScenarioSession) -> ScenarioReport:
        """Close the backend session and join the scenario report."""
        backend_report = simulator.finish_session(session.backend)
        return self._join(session.specs, backend_report,
                          simulator=simulator)

    def _join(self, specs: list, backend_report,
              simulator=None) -> ScenarioReport:
        """Join backend serving records with scenario metadata."""
        by_id = {spec.request_id: spec for spec in specs}
        rejected = getattr(backend_report, "rejected", [])
        report = ScenarioReport(
            scenario=self.spec.name,
            engine=backend_report.engine,
            mode="cluster" if hasattr(backend_report, "rejected")
            else "serving",
            seed=self.seed,
            backend_mode=str(getattr(simulator, "mode", "")),
            concurrency=int(getattr(simulator, "concurrency", 1)),
        )
        for served in sorted(backend_report.requests,
                             key=lambda r: r.request_id):
            spec = by_id[served.request_id]
            report.requests.append(ScenarioRequestRecord(
                request_id=served.request_id,
                tenant=spec.tenant,
                slo_class=spec.slo_class,
                dataset=spec.dataset,
                session=spec.session,
                arrival_s=served.arrival_s,
                queue_delay_s=served.queue_delay_s,
                ttft_s=served.ttft_s,
                tpot_s=served.tpot_s,
                latency_s=served.latency_s,
                n_prompt_tokens=served.n_prompt_tokens,
                n_generated=served.n_generated,
                energy_j=served.energy_j,
                slo_met=classify_slo(spec.slo_class, served.ttft_s,
                                     served.tpot_s),
            ))
        for dropped in sorted(rejected, key=lambda r: r.request_id):
            spec = by_id[dropped.request_id]
            report.rejected.append(ScenarioRejection(
                request_id=dropped.request_id,
                tenant=spec.tenant,
                slo_class=spec.slo_class,
                arrival_s=dropped.arrival_s,
                reason=dropped.reason,
            ))
        return report
