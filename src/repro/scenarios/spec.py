"""Declarative serving-scenario specifications.

A :class:`ScenarioSpec` describes a complete serving workload without
materializing it: an arrival process (:class:`ArrivalSpec`), a weighted
tenant mix (:class:`TenantSpec`) where each tenant carries its own
dataset, SLO class, and prompt/output length distributions
(:class:`LengthSpec`), and optional session structure
(:class:`SessionSpec`) under which consecutive requests of a tenant
share a prompt prefix (the multi-turn / shared-template reuse regime
that warms expert caches).

Specs are pure frozen data: materialization into
:class:`~repro.workloads.requests.RequestSpec` lists is the
:class:`~repro.scenarios.runner.ScenarioRunner`'s job and is fully
deterministic given ``(spec, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.scenarios.arrivals import (
    bursty_arrivals,
    diurnal_arrivals,
    flash_crowd_arrivals,
    onoff_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.workloads.requests import SLO_CLASSES

#: Length-distribution kinds understood by :meth:`LengthSpec.sample`.
LENGTH_KINDS = ("fixed", "uniform", "lognormal")

#: Arrival-pattern kinds understood by :meth:`ArrivalSpec.generate`.
ARRIVAL_KINDS = ("poisson", "uniform", "bursty", "diurnal",
                 "flash-crowd", "onoff")


@dataclass(frozen=True)
class LengthSpec:
    """Distribution of a per-request token count.

    Attributes:
        kind: one of :data:`LENGTH_KINDS`.  ``fixed`` always returns
            ``value``; ``uniform`` draws integers in ``[low, high]``;
            ``lognormal`` draws ``exp(N(mean_log, sigma_log))`` rounded
            and clipped to ``[low, high]`` (the heavy-tailed shape of
            real prompt-length distributions).
        value: the fixed token count (``fixed`` kind).
        low: inclusive lower clip bound in tokens.
        high: inclusive upper clip bound in tokens.
        mean_log: log-space mean of the lognormal kind.
        sigma_log: log-space standard deviation of the lognormal kind.
    """

    kind: str = "fixed"
    value: int = 32
    low: int = 1
    high: int = 4096
    mean_log: float = 3.0
    sigma_log: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in LENGTH_KINDS:
            raise ValueError(
                f"unknown length kind {self.kind!r}; known: {LENGTH_KINDS}"
            )
        if self.value < 1 or self.low < 1 or self.high < self.low:
            raise ValueError("length bounds must satisfy 1 <= low <= high")
        if self.sigma_log < 0:
            raise ValueError("sigma_log must be non-negative")

    def sample(self, rng: np.random.Generator) -> int:
        """Draw one token count from the distribution."""
        if self.kind == "fixed":
            return int(self.value)
        if self.kind == "uniform":
            return int(rng.integers(self.low, self.high + 1))
        drawn = int(round(float(rng.lognormal(self.mean_log,
                                              self.sigma_log))))
        return int(np.clip(drawn, self.low, self.high))


@dataclass(frozen=True)
class SessionSpec:
    """Session-level prefix-reuse structure of one tenant.

    Attributes:
        requests_per_session: consecutive requests of the tenant grouped
            into one session (>= 1).
        prefix_len: tokens of the session's shared prompt prefix; every
            request in the session starts with the same ``prefix_len``
            tokens followed by its own fresh suffix — the multi-turn /
            shared-template structure that rewards warm expert caches
            and cache-affinity routing.
    """

    requests_per_session: int = 4
    prefix_len: int = 16

    def __post_init__(self) -> None:
        if self.requests_per_session < 1:
            raise ValueError("requests_per_session must be positive")
        if self.prefix_len < 1:
            raise ValueError("prefix_len must be positive")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of a scenario's request mix.

    Attributes:
        name: tenant identifier (unique within a scenario).
        weight: relative share of requests (> 0; normalized over the
            scenario's tenants).
        dataset: name of the synthetic dataset the tenant's tokens are
            drawn from (:func:`repro.workloads.datasets.get_dataset`).
        slo_class: one of :data:`repro.workloads.requests.SLO_CLASSES`.
        prompt_len: per-request prompt-length distribution (tokens).
        output_len: per-request decode-length distribution (tokens).
        session: optional prefix-reuse structure; None means every
            request is independent.
        n_distinct: if set, the tenant draws from only this many
            distinct samples (request ``i`` reuses sample ``i mod
            n_distinct``) — similarity-clustered traffic (sticky
            prompts, shared templates).  None means every request is
            unique.  Ignored for session tenants, whose reuse structure
            comes from the shared prefix instead.
    """

    name: str
    weight: float = 1.0
    dataset: str = "sharegpt"
    slo_class: str = "interactive"
    prompt_len: LengthSpec = field(default_factory=LengthSpec)
    output_len: LengthSpec = field(
        default_factory=lambda: LengthSpec(kind="fixed", value=16)
    )
    session: SessionSpec | None = None
    n_distinct: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError("tenant weight must be positive")
        if self.slo_class not in SLO_CLASSES:
            raise ValueError(
                f"unknown slo_class {self.slo_class!r}; "
                f"known: {SLO_CLASSES}"
            )
        if self.n_distinct is not None and self.n_distinct < 1:
            raise ValueError("n_distinct must be positive when set")


@dataclass(frozen=True)
class ArrivalSpec:
    """Arrival process of a scenario.

    Attributes:
        kind: one of :data:`ARRIVAL_KINDS`.
        rate_per_s: mean (``poisson`` / ``uniform`` / ``bursty``), base
            (``diurnal`` / ``flash-crowd``), or ON-state
            (``onoff``) arrival rate in requests per simulated second.
        n_requests: number of requests the scenario offers.
        burst_size: requests per burst (``bursty``).
        burst_spread_s: intra-burst spread in seconds (``bursty``).
        period_s: sinusoid period in seconds (``diurnal``).
        amplitude: sinusoid amplitude in [0, 1) (``diurnal``).
        spike_start_s: spike-window start in seconds (``flash-crowd``).
        spike_duration_s: spike-window length in seconds
            (``flash-crowd``).
        spike_multiplier: in-window rate multiplier (``flash-crowd``).
        mean_on_s: mean ON-state sojourn in seconds (``onoff``).
        mean_off_s: mean OFF-state sojourn in seconds (``onoff``).
    """

    kind: str = "poisson"
    rate_per_s: float = 0.1
    n_requests: int = 16
    burst_size: int = 4
    burst_spread_s: float = 0.05
    period_s: float = 600.0
    amplitude: float = 0.8
    spike_start_s: float = 60.0
    spike_duration_s: float = 30.0
    spike_multiplier: float = 8.0
    mean_on_s: float = 20.0
    mean_off_s: float = 60.0

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrival kind {self.kind!r}; "
                f"known: {ARRIVAL_KINDS}"
            )
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if self.n_requests < 1:
            raise ValueError("n_requests must be positive")

    def generate(self, rng: np.random.Generator,
                 n_requests: int | None = None) -> np.ndarray:
        """Materialize the arrival-time array (sorted, seconds).

        Args:
            rng: seeded generator (determinism flows from the caller).
            n_requests: override of the spec's request count (used by
                fast/smoke runs); None keeps the spec's value.
        """
        n = self.n_requests if n_requests is None else n_requests
        if self.kind == "poisson":
            return poisson_arrivals(self.rate_per_s, n, rng)
        if self.kind == "uniform":
            return uniform_arrivals(self.rate_per_s, n)
        if self.kind == "bursty":
            return bursty_arrivals(
                self.rate_per_s, n, rng,
                burst_size=self.burst_size,
                burst_spread_s=self.burst_spread_s,
            )
        if self.kind == "diurnal":
            return diurnal_arrivals(
                self.rate_per_s, n, rng,
                period_s=self.period_s, amplitude=self.amplitude,
            )
        if self.kind == "flash-crowd":
            return flash_crowd_arrivals(
                self.rate_per_s, n, rng,
                spike_start_s=self.spike_start_s,
                spike_duration_s=self.spike_duration_s,
                spike_multiplier=self.spike_multiplier,
            )
        return onoff_arrivals(
            self.rate_per_s, n, rng,
            mean_on_s=self.mean_on_s, mean_off_s=self.mean_off_s,
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, fully-declarative serving scenario.

    Attributes:
        name: registry key (kebab-case).
        description: one-line summary shown by ``repro scenarios list``.
        arrival: the scenario's arrival process.
        tenants: weighted tenant mix (non-empty, unique names).
    """

    name: str
    description: str
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    tenants: tuple = (TenantSpec(name="default"),)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if not self.tenants:
            raise ValueError("a scenario needs at least one tenant")
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {sorted(names)}")

    @property
    def tenant_weights(self) -> np.ndarray:
        """Normalized tenant selection probabilities."""
        weights = np.asarray([t.weight for t in self.tenants],
                             dtype=np.float64)
        return weights / weights.sum()

    def with_overrides(self, **kwargs) -> "ScenarioSpec":
        """Copy with some fields replaced."""
        return replace(self, **kwargs)
