"""Scenario library and trace-driven workload replay for serving sims.

This package turns the serving stack from a single synthetic regime
into a reproducible scenario -> report pipeline: declarative
:class:`~repro.scenarios.spec.ScenarioSpec` entries (arrival process,
weighted tenant mix with per-tenant SLO classes and length
distributions, session prefix reuse) in a named registry, arrival
generators beyond Poisson (diurnal sinusoid, flash crowd, Markov
on/off), a :class:`~repro.scenarios.runner.ScenarioRunner` that drives
any ``run_requests``-capable simulator, and a
:class:`~repro.scenarios.report.ScenarioReport` JSON artifact with
per-tenant / per-SLO-class breakdowns and a deterministic content
digest.  See docs/scenarios.md.
"""

from repro.scenarios.arrivals import (
    bursty_arrivals,
    diurnal_arrivals,
    flash_crowd_arrivals,
    onoff_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.scenarios.registry import (
    SCENARIO_NAMES,
    SCENARIOS,
    get_scenario,
    register_scenario,
)
from repro.scenarios.report import (
    ScenarioRejection,
    ScenarioReport,
    ScenarioRequestRecord,
    classify_slo,
    diff_reports,
)
from repro.scenarios.runner import ScenarioRunner, ScenarioSession
from repro.scenarios.spec import (
    ARRIVAL_KINDS,
    LENGTH_KINDS,
    ArrivalSpec,
    LengthSpec,
    ScenarioSpec,
    SessionSpec,
    TenantSpec,
)

__all__ = [
    "bursty_arrivals",
    "diurnal_arrivals",
    "flash_crowd_arrivals",
    "onoff_arrivals",
    "poisson_arrivals",
    "uniform_arrivals",
    "SCENARIO_NAMES",
    "SCENARIOS",
    "get_scenario",
    "register_scenario",
    "ScenarioRejection",
    "ScenarioReport",
    "ScenarioRequestRecord",
    "classify_slo",
    "diff_reports",
    "ScenarioRunner",
    "ScenarioSession",
    "ARRIVAL_KINDS",
    "LENGTH_KINDS",
    "ArrivalSpec",
    "LengthSpec",
    "ScenarioSpec",
    "SessionSpec",
    "TenantSpec",
]
