"""Named scenario registry.

Every entry is a fully-declarative :class:`~repro.scenarios.spec.ScenarioSpec`
capturing one serving regime the DAOP claims should be tested under.
The paper's own evaluation regime — GSM8K-style within-sequence topic
drift served one request at a time — is just one entry
(``gsm8k-topic-drift``); the rest cover the workload axes the
data-aware-offloading argument actually depends on: time-varying load
(diurnal, flash crowd, on/off), tenant mixes with heterogeneous SLO
classes and length distributions, similarity-clustered traffic, and
session-level prefix reuse.

Use :func:`get_scenario` / :data:`SCENARIO_NAMES` to look entries up and
:func:`register_scenario` to add project-local ones (tests register
throwaway scenarios this way).
"""

from __future__ import annotations

from repro.scenarios.spec import (
    ArrivalSpec,
    LengthSpec,
    ScenarioSpec,
    SessionSpec,
    TenantSpec,
)
from repro.workloads.requests import BATCH, INTERACTIVE, LONG_CONTEXT

#: The built-in scenario library, keyed by name.
SCENARIOS = {}


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Add a scenario to the registry (name must be unused)."""
    if spec.name in SCENARIOS:
        raise ValueError(f"scenario {spec.name!r} already registered")
    SCENARIOS[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}"
        ) from None


# -- The built-in library ------------------------------------------------------

register_scenario(ScenarioSpec(
    name="gsm8k-topic-drift",
    description="The paper's Obs.-3 regime: high within-sequence topic "
                "drift (GSM8K), steady Poisson arrivals, uniform "
                "lengths.",
    arrival=ArrivalSpec(kind="poisson", rate_per_s=0.05, n_requests=12),
    tenants=(
        TenantSpec(
            name="gsm8k", dataset="gsm8k", slo_class=INTERACTIVE,
            prompt_len=LengthSpec(kind="fixed", value=32),
            output_len=LengthSpec(kind="fixed", value=16),
        ),
    ),
))

register_scenario(ScenarioSpec(
    name="chat-diurnal",
    description="Chat traffic under a sinusoidal day/night load swing "
                "(diurnal-modulated Poisson).",
    arrival=ArrivalSpec(kind="diurnal", rate_per_s=0.08, n_requests=16,
                        period_s=400.0, amplitude=0.85),
    tenants=(
        TenantSpec(
            name="chat", dataset="sharegpt", slo_class=INTERACTIVE,
            prompt_len=LengthSpec(kind="uniform", low=16, high=48),
            output_len=LengthSpec(kind="uniform", low=8, high=24),
        ),
    ),
))

register_scenario(ScenarioSpec(
    name="flash-crowd",
    description="A viral spike: baseline Poisson chat traffic with an "
                "8x rate surge over a short window.",
    arrival=ArrivalSpec(kind="flash-crowd", rate_per_s=0.04,
                        n_requests=16, spike_start_s=120.0,
                        spike_duration_s=60.0, spike_multiplier=8.0),
    tenants=(
        TenantSpec(
            name="chat", dataset="sharegpt", slo_class=INTERACTIVE,
            prompt_len=LengthSpec(kind="uniform", low=16, high=40),
            output_len=LengthSpec(kind="fixed", value=12),
        ),
    ),
))

register_scenario(ScenarioSpec(
    name="multi-tenant-slo",
    description="Three tenants with distinct SLO classes: interactive "
                "chat, batch summarization, and long-context analysis.",
    arrival=ArrivalSpec(kind="poisson", rate_per_s=0.06, n_requests=18),
    tenants=(
        TenantSpec(
            name="chat", weight=3.0, dataset="sharegpt",
            slo_class=INTERACTIVE,
            prompt_len=LengthSpec(kind="uniform", low=12, high=32),
            output_len=LengthSpec(kind="uniform", low=8, high=16),
        ),
        TenantSpec(
            name="summarize", weight=2.0, dataset="c4", slo_class=BATCH,
            prompt_len=LengthSpec(kind="lognormal", mean_log=3.4,
                                  sigma_log=0.3, low=16, high=64),
            output_len=LengthSpec(kind="fixed", value=24),
        ),
        TenantSpec(
            name="analyst", weight=1.0, dataset="mmlu",
            slo_class=LONG_CONTEXT,
            prompt_len=LengthSpec(kind="uniform", low=48, high=96),
            output_len=LengthSpec(kind="fixed", value=8),
        ),
    ),
))

register_scenario(ScenarioSpec(
    name="session-prefix-reuse",
    description="Multi-turn sessions sharing a prompt prefix (warm "
                "expert caches pay off), arriving in bursts.",
    arrival=ArrivalSpec(kind="bursty", rate_per_s=0.08, n_requests=16,
                        burst_size=4, burst_spread_s=2.0),
    tenants=(
        TenantSpec(
            name="sessions", dataset="triviaqa", slo_class=INTERACTIVE,
            prompt_len=LengthSpec(kind="uniform", low=8, high=16),
            output_len=LengthSpec(kind="fixed", value=8),
            session=SessionSpec(requests_per_session=4, prefix_len=24),
        ),
    ),
))

register_scenario(ScenarioSpec(
    name="onoff-batch-bursts",
    description="Markov-modulated on/off arrivals from an upstream "
                "batch pipeline, drawing on a small clustered prompt "
                "pool.",
    arrival=ArrivalSpec(kind="onoff", rate_per_s=0.3, n_requests=16,
                        mean_on_s=30.0, mean_off_s=120.0),
    tenants=(
        TenantSpec(
            name="pipeline", dataset="alpaca", slo_class=BATCH,
            prompt_len=LengthSpec(kind="fixed", value=24),
            output_len=LengthSpec(kind="fixed", value=12),
            n_distinct=4,
        ),
    ),
))

register_scenario(ScenarioSpec(
    name="mixed-interactive-batch",
    description="Interactive chat sharing the fleet with a background "
                "batch tenant that carries long outputs.",
    arrival=ArrivalSpec(kind="bursty", rate_per_s=0.07, n_requests=16,
                        burst_size=3, burst_spread_s=1.0),
    tenants=(
        TenantSpec(
            name="chat", weight=2.0, dataset="sharegpt",
            slo_class=INTERACTIVE,
            prompt_len=LengthSpec(kind="uniform", low=12, high=32),
            output_len=LengthSpec(kind="uniform", low=8, high=16),
        ),
        TenantSpec(
            name="background", weight=1.0, dataset="c4", slo_class=BATCH,
            prompt_len=LengthSpec(kind="fixed", value=16),
            output_len=LengthSpec(kind="fixed", value=32),
            n_distinct=2,
        ),
    ),
))

#: Registered scenario names in deterministic (sorted) order.
SCENARIO_NAMES = tuple(sorted(SCENARIOS))
