"""Routing-pattern statistics beyond the paper's similarity metrics.

These quantify the structure DAOP's "data-aware" mechanisms exploit:

- **load imbalance** (Gini coefficient / entropy of per-expert load):
  near-zero Gini dataset-wide (balanced training, observation 1) but high
  per sequence (dominant experts);
- **co-activation**: which expert pairs fire together under top-2 routing
  (a skewed co-activation structure is what makes a small cache per
  layer viable);
- **temporal locality**: probability that an expert activated at decode
  step t is re-activated at step t+1 (what LRU-style caches harvest).
"""

from __future__ import annotations

import numpy as np

from repro.trace.recorder import DECODE, ActivationTrace


def gini_coefficient(loads: np.ndarray) -> float:
    """Gini coefficient of a non-negative load vector (0 = balanced)."""
    loads = np.sort(np.asarray(loads, dtype=np.float64))
    if loads.size == 0:
        raise ValueError("loads must be non-empty")
    if np.any(loads < 0):
        raise ValueError("loads must be non-negative")
    total = loads.sum()
    if total == 0:
        return 0.0
    n = loads.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * np.sum(ranks * loads) / (n * total)) - (n + 1) / n)


def normalized_entropy(loads: np.ndarray) -> float:
    """Shannon entropy of the load distribution, normalized to [0, 1]."""
    loads = np.asarray(loads, dtype=np.float64)
    if loads.size < 2:
        raise ValueError("need at least two experts")
    total = loads.sum()
    if total == 0:
        return 1.0
    p = loads / total
    p = p[p > 0]
    return float(-(p * np.log(p)).sum() / np.log(loads.size))


def expert_load_stats(trace: ActivationTrace,
                      phase: str | None = None) -> dict:
    """Per-block Gini and entropy of expert load for one trace."""
    counts = trace.activation_counts(phase).astype(np.float64)
    ginis = [gini_coefficient(row) for row in counts]
    entropies = [normalized_entropy(row) for row in counts]
    return {
        "gini_per_block": np.asarray(ginis),
        "entropy_per_block": np.asarray(entropies),
        "mean_gini": float(np.mean(ginis)),
        "mean_entropy": float(np.mean(entropies)),
    }


def coactivation_matrix(trace: ActivationTrace, block: int,
                        phase: str | None = None) -> np.ndarray:
    """Symmetric count matrix of experts activated together per token."""
    matrix = np.zeros((trace.n_experts, trace.n_experts), dtype=np.float64)
    for event in trace.events:
        if event.block != block:
            continue
        if phase is not None and event.phase != phase:
            continue
        experts = list(event.experts)
        for i, a in enumerate(experts):
            for b in experts[i + 1:]:
                matrix[a, b] += 1.0
                matrix[b, a] += 1.0
    return matrix


def temporal_locality(trace: ActivationTrace, block: int) -> float:
    """P(expert re-activated at the next decode step | activated now)."""
    steps: dict[int, set[int]] = {}
    for event in trace.events:
        if event.phase != DECODE or event.block != block:
            continue
        steps.setdefault(event.token_pos, set()).update(event.experts)
    positions = sorted(steps)
    if len(positions) < 2:
        return 0.0
    hits = 0
    total = 0
    for a, b in zip(positions, positions[1:]):
        for expert in steps[a]:
            total += 1
            if expert in steps[b]:
                hits += 1
    if total == 0:
        return 0.0
    return hits / total


def summarize_routing(trace: ActivationTrace) -> str:
    """Human-readable routing-structure summary."""
    stats = expert_load_stats(trace)
    localities = [
        temporal_locality(trace, b) for b in range(trace.n_blocks)
    ]
    lines = [
        f"mean per-block load Gini     : {stats['mean_gini']:.3f}",
        f"mean per-block load entropy  : {stats['mean_entropy']:.3f}",
        f"mean decode temporal locality: {float(np.mean(localities)):.3f}",
    ]
    return "\n".join(lines)
