"""Trace and timeline serialization.

Two formats:

- a plain JSON dump of routing events and schedule ops, for offline
  analysis and regression archiving;
- the Chrome trace-event format (``chrome://tracing`` / Perfetto), so a
  simulated DAOP schedule can be inspected in the same UI engineers use
  for real GPU traces.
"""

from __future__ import annotations

import json

from repro.hardware.timeline import RESOURCES, Timeline
from repro.trace.recorder import ActivationTrace

_RESOURCE_TIDS = {resource: i for i, resource in enumerate(RESOURCES)}


def timeline_to_dict(timeline: Timeline) -> dict:
    """Plain-data representation of a timeline."""
    return {
        "makespan_s": timeline.makespan,
        "ops": [
            {
                "index": op.index,
                "resource": op.resource,
                "start_s": op.start,
                "end_s": op.end,
                "duration_s": op.duration,
                "label": op.label,
                "kind": op.kind,
            }
            for op in timeline.ops
        ],
    }


def trace_to_dict(trace: ActivationTrace) -> dict:
    """Plain-data representation of a routing trace."""
    return {
        "n_blocks": trace.n_blocks,
        "n_experts": trace.n_experts,
        "events": [
            {
                "phase": event.phase,
                "block": event.block,
                "token_pos": event.token_pos,
                "experts": list(event.experts),
                "executed_experts": (
                    None if event.executed_experts is None
                    else list(event.executed_experts)
                ),
                "predicted": event.predicted,
            }
            for event in trace.events
        ],
    }


def timeline_to_chrome_trace(timeline: Timeline,
                             process_name: str = "repro") -> str:
    """Serialize a timeline as a Chrome trace-event JSON string.

    Each resource becomes a thread; each op becomes a complete ("X")
    event with microsecond timestamps.  Load the output in
    ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": process_name},
        }
    ]
    for resource, tid in _RESOURCE_TIDS.items():
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": resource},
        })
    for op in timeline.ops:
        if op.duration <= 0:
            continue
        events.append({
            "name": op.label or op.kind or f"op{op.index}",
            "cat": op.kind or "op",
            "ph": "X",
            "pid": 1,
            "tid": _RESOURCE_TIDS[op.resource],
            "ts": op.start * 1e6,
            "dur": op.duration * 1e6,
        })
    return json.dumps({"traceEvents": events})


def save_run(path: str, timeline: Timeline,
             trace: ActivationTrace | None = None) -> None:
    """Write a JSON archive of one generation's schedule (and trace)."""
    payload = {"timeline": timeline_to_dict(timeline)}
    if trace is not None:
        payload["trace"] = trace_to_dict(trace)
    with open(path, "w") as handle:
        json.dump(payload, handle)
