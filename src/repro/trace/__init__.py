"""Routing-trace instrumentation and the paper's observation metrics."""

from repro.trace.export import (
    save_run,
    timeline_to_chrome_trace,
    timeline_to_dict,
    trace_to_dict,
)
from repro.trace.prediction import PredictionStats
from repro.trace.recorder import (
    DECODE,
    PHASES,
    PREFILL,
    ActivationTrace,
    RoutingEvent,
)
from repro.trace.statistics import (
    coactivation_matrix,
    expert_load_stats,
    gini_coefficient,
    normalized_entropy,
    summarize_routing,
    temporal_locality,
)
from repro.trace.similarity import (
    cosine_similarity,
    matrix_similarity,
    windowed_decode_similarity,
)

__all__ = [
    "save_run",
    "timeline_to_chrome_trace",
    "timeline_to_dict",
    "trace_to_dict",
    "PredictionStats",
    "DECODE",
    "PHASES",
    "PREFILL",
    "ActivationTrace",
    "RoutingEvent",
    "coactivation_matrix",
    "expert_load_stats",
    "gini_coefficient",
    "normalized_entropy",
    "summarize_routing",
    "temporal_locality",
    "cosine_similarity",
    "matrix_similarity",
    "windowed_decode_similarity",
]
