"""Layer-ahead expert-prediction accuracy statistics (paper Fig. 5).

The paper's observation (3): applying block ``i+1``'s gating function to
block ``i``'s post-attention hidden states predicts block ``i+1``'s actual
expert selection with high accuracy (84.11 % averaged over Alpaca, MATH,
and C4 for Mixtral 8x7B), stabilizing after the first few layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class PredictionStats:
    """Accumulates per-block prediction hit rates."""

    n_blocks: int
    hits: np.ndarray = field(init=False)
    totals: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.hits = np.zeros(self.n_blocks, dtype=np.float64)
        self.totals = np.zeros(self.n_blocks, dtype=np.float64)

    def record(self, block: int, predicted, actual) -> None:
        """Record one token's prediction for ``block``.

        Accuracy is set overlap: ``|predicted ∩ actual| / |actual|`` --
        with top-2 routing a token scores 0, 0.5, or 1.
        """
        predicted_set = {int(e) for e in np.atleast_1d(predicted)}
        actual_set = {int(e) for e in np.atleast_1d(actual)}
        if not actual_set:
            return
        overlap = len(predicted_set & actual_set) / len(actual_set)
        self.hits[block] += overlap
        self.totals[block] += 1.0

    def per_block_accuracy(self) -> np.ndarray:
        """Per-block accuracy; NaN for blocks with no observations."""
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(self.totals > 0, self.hits / self.totals, np.nan)

    def mean_accuracy(self, start_block: int = 0) -> float:
        """Mean accuracy over blocks ``>= start_block`` with observations."""
        acc = self.per_block_accuracy()[start_block:]
        acc = acc[~np.isnan(acc)]
        if acc.size == 0:
            return float("nan")
        return float(np.mean(acc))

    def merge(self, other: "PredictionStats") -> None:
        """Accumulate another stats object into this one."""
        if other.n_blocks != self.n_blocks:
            raise ValueError("block counts differ")
        self.hits += other.hits
        self.totals += other.totals
