"""Expert-activation similarity metrics (paper Eq. 1 and §VI-B).

The paper quantifies how well the prefill phase's expert activation
pattern predicts the decode phase's: the two phases' ``L x E`` activation
probability matrices are compared row-wise by cosine similarity and
averaged over layers.
"""

from __future__ import annotations

import numpy as np


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two vectors; 0 if either is all-zero."""
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    norm = np.linalg.norm(a) * np.linalg.norm(b)
    if norm == 0.0:
        return 0.0
    return float(np.dot(a, b) / norm)


def matrix_similarity(p: np.ndarray, d: np.ndarray) -> float:
    """Paper Eq. 1: mean of row-wise cosine similarities of two L x E maps."""
    p = np.asarray(p, dtype=np.float64)
    d = np.asarray(d, dtype=np.float64)
    if p.shape != d.shape:
        raise ValueError("matrices must have matching shapes")
    if p.ndim != 2:
        raise ValueError("matrices must be 2-D (layers x experts)")
    return float(
        np.mean([cosine_similarity(p[i], d[i]) for i in range(p.shape[0])])
    )


def windowed_decode_similarity(matrices: list[np.ndarray]) -> float:
    """Mean similarity between consecutive decode windows (paper §VI-B).

    The paper measures expert-activation variation during decoding with a
    15-token window; datasets whose consecutive windows are less similar
    (GSM8K) defeat a small static expert cache.
    """
    if len(matrices) < 2:
        return 1.0
    sims = [
        matrix_similarity(matrices[i], matrices[i + 1])
        for i in range(len(matrices) - 1)
    ]
    return float(np.mean(sims))
