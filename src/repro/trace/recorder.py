"""Routing-trace recording.

Engines record every routing decision (which experts each token activated
at each block, in which phase) into an :class:`ActivationTrace`; the
similarity and prediction analyses of the paper's observations section are
computed from these traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

PREFILL = "prefill"
DECODE = "decode"
PHASES = (PREFILL, DECODE)


@dataclass
class RoutingEvent:
    """Expert activations of one token at one block."""

    phase: str
    block: int
    token_pos: int
    experts: tuple[int, ...]
    executed_experts: tuple[int, ...] | None = None
    predicted: bool = False

    def to_state_dict(self) -> dict:
        """Serialize the event for a checkpoint (all plain data)."""
        return {
            "phase": self.phase,
            "block": self.block,
            "token_pos": self.token_pos,
            "experts": list(self.experts),
            "executed_experts": (
                None if self.executed_experts is None
                else list(self.executed_experts)
            ),
            "predicted": self.predicted,
        }

    @classmethod
    def from_state_dict(cls, payload: dict) -> "RoutingEvent":
        """Rebuild an event captured by :meth:`to_state_dict`."""
        executed = payload["executed_experts"]
        return cls(
            phase=payload["phase"],
            block=int(payload["block"]),
            token_pos=int(payload["token_pos"]),
            experts=tuple(int(e) for e in payload["experts"]),
            executed_experts=(
                None if executed is None else tuple(int(e) for e in executed)
            ),
            predicted=bool(payload["predicted"]),
        )


@dataclass
class ActivationTrace:
    """Accumulated routing events for one generated sequence."""

    n_blocks: int
    n_experts: int
    events: list[RoutingEvent] = field(default_factory=list)

    def record(self, phase: str, block: int, token_pos: int,
               experts, executed_experts=None, predicted: bool = False) -> None:
        """Append one routing event."""
        if phase not in PHASES:
            raise ValueError(f"phase must be one of {PHASES}")
        self.events.append(
            RoutingEvent(
                phase=phase,
                block=block,
                token_pos=token_pos,
                experts=tuple(int(e) for e in np.atleast_1d(experts)),
                executed_experts=(
                    None if executed_experts is None
                    else tuple(int(e) for e in np.atleast_1d(executed_experts))
                ),
                predicted=predicted,
            )
        )

    def to_state_dict(self) -> dict:
        """Serialize the trace for a checkpoint."""
        return {
            "n_blocks": self.n_blocks,
            "n_experts": self.n_experts,
            "events": [event.to_state_dict() for event in self.events],
        }

    @classmethod
    def from_state_dict(cls, payload: dict) -> "ActivationTrace":
        """Rebuild a trace captured by :meth:`to_state_dict`."""
        trace = cls(int(payload["n_blocks"]), int(payload["n_experts"]))
        trace.events.extend(
            RoutingEvent.from_state_dict(event)
            for event in payload["events"]
        )
        return trace

    # ---- aggregation ---------------------------------------------------------

    def activation_counts(self, phase: str | None = None,
                          executed: bool = False) -> np.ndarray:
        """Per-(block, expert) activation counts.

        Args:
            phase: restrict to one phase, or ``None`` for both.
            executed: count the experts actually executed (after graceful
                degradation) instead of the gate's selections.
        """
        counts = np.zeros((self.n_blocks, self.n_experts), dtype=np.int64)
        for event in self.events:
            if phase is not None and event.phase != phase:
                continue
            experts = event.experts
            if executed and event.executed_experts is not None:
                experts = event.executed_experts
            for expert in experts:
                counts[event.block, expert] += 1
        return counts

    def activation_matrix(self, phase: str | None = None,
                          executed: bool = False) -> np.ndarray:
        """Activation-probability matrix: counts / tokens per block.

        This is the paper's :math:`P_{i,j}` / :math:`D_{i,j}`: the ratio of
        tokens routed to expert ``j`` at block ``i`` to the total tokens
        processed by that block.
        """
        counts = self.activation_counts(phase, executed).astype(np.float64)
        tokens = self.token_count(phase)
        if tokens == 0:
            return counts
        return counts / tokens

    def token_count(self, phase: str | None = None) -> int:
        """Distinct token positions recorded (at block 0) for a phase."""
        positions = {
            event.token_pos
            for event in self.events
            if event.block == 0 and (phase is None or event.phase == phase)
        }
        return len(positions)

    def decode_window_matrices(self, window: int) -> list[np.ndarray]:
        """Activation matrices over consecutive decode windows.

        Used for the paper's §VI-B analysis: expert-activation variation
        during decoding measured with a 15-token window.
        """
        if window < 1:
            raise ValueError("window must be positive")
        decode_positions = sorted(
            {e.token_pos for e in self.events if e.phase == DECODE}
        )
        if not decode_positions:
            return []
        pos_rank = {p: i for i, p in enumerate(decode_positions)}
        n_windows = (len(decode_positions) + window - 1) // window
        counts = np.zeros(
            (n_windows, self.n_blocks, self.n_experts), dtype=np.float64
        )
        window_tokens = np.zeros(n_windows, dtype=np.float64)
        seen_block0 = set()
        for event in self.events:
            if event.phase != DECODE:
                continue
            w = pos_rank[event.token_pos] // window
            for expert in event.experts:
                counts[w, event.block, expert] += 1
            if event.block == 0 and event.token_pos not in seen_block0:
                seen_block0.add(event.token_pos)
                window_tokens[w] += 1
        matrices = []
        for w in range(n_windows):
            tokens = max(window_tokens[w], 1.0)
            matrices.append(counts[w] / tokens)
        return matrices
