"""Command-line interface for the DAOP reproduction.

Subcommands::

    repro info                         model + platform + Table I summary
    repro speed    [--engines ...]     throughput/energy comparison
    repro accuracy [--task ...]        harness accuracy vs the oracle
    repro observe  [--dataset ...]     similarity + prediction statistics
    repro serve    [--rate ...]        request-level serving simulation
    repro serve-cluster [--policy ...] multi-replica cluster simulation
    repro watch    [--engine ...]      live event stream from a serving run
    repro scenarios {list,run,replay,compare}  scenario library driver
    repro bench-batch [--batch-sizes ...] continuous-batching benchmark
    repro trace    [--engine ...]      schedule analysis + Chrome trace
    repro audit    [--engines ...]     differential + resume-parity audit
    repro perf-delta BASELINE CANDIDATE  benchmark regression gate
    repro lint     [paths ...]         daoplint static invariant checker

Every command accepts ``--model {mixtral,phi,tiny}``, ``--blocks N`` (to
shrink the functional model), and ``--seed``.  All results are simulated:
no GPU is required.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis import summarize_schedule
from repro.cluster import (
    POLICY_NAMES,
    AdmissionController,
    ClusterSimulator,
    SLOTarget,
    build_policy,
)
from repro.core import ENGINE_NAMES, build_engine
from repro.core.calibration import calibrate_activation_probs
from repro.eval.harness import AccuracyHarness
from repro.hardware.cost_model import CostModel
from repro.hardware.presets import default_platform
from repro.metrics import format_table, summarize_results
from repro.model.zoo import (
    build_mixtral_8x7b_sim,
    build_phi_3_5_moe_sim,
    build_tiny_moe,
)
from repro.serving import (
    ServingSimulator,
    bursty_arrivals,
    poisson_arrivals,
)
from repro.trace.export import timeline_to_chrome_trace
from repro.workloads import SequenceGenerator, get_dataset, get_task

_BUILDERS = {
    "mixtral": build_mixtral_8x7b_sim,
    "phi": build_phi_3_5_moe_sim,
    "tiny": build_tiny_moe,
}

DEFAULT_ENGINES = ("moe-ondemand", "fiddler", "daop")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", choices=sorted(_BUILDERS),
                        default="mixtral", help="model analogue to build")
    parser.add_argument("--blocks", type=int, default=16,
                        help="functional block count (paper topology: 32)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--ecr", type=float, default=0.469,
                        help="expert cache ratio for cached engines")


def _build(args):
    builder = _BUILDERS[args.model]
    kwargs = {"seed": args.seed}
    if args.model == "tiny":
        kwargs["n_blocks"] = min(args.blocks, 8)
    else:
        kwargs["n_blocks"] = args.blocks
    return builder(**kwargs)


def _calibrate(bundle):
    return calibrate_activation_probs(
        bundle, n_sequences=4, prompt_len=24, decode_len=24
    )


def cmd_info(args) -> int:
    """Print model, platform, and Table I cost-model summary."""
    bundle = _build(args)
    platform = default_platform()
    arch = bundle.arch
    cm = CostModel(arch, platform)
    rows = [
        ["model", arch.name],
        ["blocks x experts (top-k)",
         f"{arch.n_blocks} x {arch.n_experts} (top-{arch.top_k})"],
        ["total params", f"{arch.total_params / 1e9:.1f} B"],
        ["expert params", f"{arch.total_expert_params / 1e9:.1f} B"],
        ["activated per token", f"{100 * arch.activated_fraction:.1f} %"],
        ["expert size (fp16)", f"{arch.expert_bytes / 1e6:.0f} MB"],
        ["platform", f"{platform.gpu.name} + {platform.cpu.name}"],
        ["GPU expert slots",
         f"{cm.gpu_expert_slots()} of {arch.n_blocks * arch.n_experts} "
         f"(ECR {cm.gpu_expert_slots() / (arch.n_blocks * arch.n_experts):.1%})"],
        ["GPU block (decode)",
         f"{1e3 * cm.block_time(platform.gpu, 1, 256):.2f} ms"],
        ["CPU block (decode)",
         f"{1e3 * cm.block_time(platform.cpu, 1, 256):.2f} ms"],
        ["expert upload", f"{1e3 * cm.expert_transfer_time():.2f} ms"],
    ]
    print(format_table(["property", "value"], rows, title="repro info"))
    return 0


def cmd_speed(args) -> int:
    """Compare engine throughput and energy on one workload."""
    bundle = _build(args)
    platform = default_platform()
    calibration = _calibrate(bundle)
    dataset = get_dataset(args.dataset)
    generator = SequenceGenerator(dataset, bundle.vocab, seed=args.seed + 1)
    sequences = [
        generator.sample_sequence(args.input_len, args.output_len,
                                  sample_idx=i)
        for i in range(args.sequences)
    ]
    rows = []
    for name in args.engines:
        engine = build_engine(name, bundle, platform,
                              expert_cache_ratio=args.ecr,
                              calibration_probs=calibration)
        results = [
            engine.generate(s.prompt_tokens, args.output_len,
                            forced_tokens=s.continuation_tokens)
            for s in sequences
        ]
        summary = summarize_results(name, results)
        rows.append([
            name, summary.tokens_per_second,
            summary.tokens_per_kilojoule,
            f"{100 * summary.gpu_hit_rate:.0f}%",
        ])
    print(format_table(
        ["engine", "tok/s", "tok/kJ", "gpu hits"],
        rows,
        title=f"speed: {args.model}, {args.dataset}, "
              f"in/out {args.input_len}/{args.output_len}, "
              f"ECR {args.ecr:.1%}",
    ))
    return 0


def cmd_accuracy(args) -> int:
    """Score an engine against the official oracle on one task."""
    bundle = _build(args)
    platform = default_platform()
    calibration = _calibrate(bundle)
    task = get_task(args.task)
    harness = AccuracyHarness(bundle, platform, seed=args.seed + 3)
    official = harness.evaluate_official(task, n_samples=args.samples)
    rows = [["official", "-", 100 * official.score]]
    for name in args.engines:
        if name == "official":
            continue
        engine = build_engine(name, bundle, platform,
                              expert_cache_ratio=args.ecr,
                              calibration_probs=calibration)
        result = harness.evaluate(engine, task, n_samples=args.samples)
        rows.append([name, f"{args.ecr:.1%}", 100 * result.score])
    print(format_table(
        ["engine", "ECR", f"{task.metric} (%)"], rows,
        title=f"accuracy: {args.task} ({task.n_samples} max samples)",
    ))
    return 0


def cmd_observe(args) -> int:
    """Measure the paper's observation statistics on one dataset."""
    from repro.trace import ActivationTrace, matrix_similarity

    bundle = _build(args)
    model = bundle.model
    dataset = get_dataset(args.dataset)
    generator = SequenceGenerator(dataset, bundle.vocab, seed=args.seed + 4)
    sims = []
    for i in range(args.sequences):
        sequence = generator.sample_sequence(48, 48, sample_idx=i)
        trace = ActivationTrace(model.n_blocks, model.n_experts)
        caches = model.new_caches()
        _, decisions = model.forward_exact(sequence.prompt_tokens, caches)
        for b, decision in enumerate(decisions):
            for t in range(decision.n_tokens):
                trace.record("prefill", b, t, decision.experts[t])
        position = sequence.prompt_tokens.size
        for token in sequence.continuation_tokens:
            _, decisions = model.forward_exact(
                np.asarray([token]), caches, start_pos=position
            )
            for b, decision in enumerate(decisions):
                trace.record("decode", b, position, decision.experts[0])
            position += 1
        sims.append(matrix_similarity(
            trace.activation_matrix("prefill"),
            trace.activation_matrix("decode"),
        ))
    # Routing-structure statistics over the last sequence's trace.
    from repro.trace.statistics import expert_load_stats, temporal_locality

    load = expert_load_stats(trace)
    locality = float(np.mean([
        temporal_locality(trace, b) for b in range(model.n_blocks)
    ]))
    print(format_table(
        ["statistic", "value"],
        [["prefill/decode similarity (Eq. 1)",
          f"{100 * float(np.mean(sims)):.2f} %"],
         ["mean per-block load Gini", f"{load['mean_gini']:.3f}"],
         ["mean per-block load entropy", f"{load['mean_entropy']:.3f}"],
         ["mean decode temporal locality", f"{locality:.3f}"],
         ["sequences", args.sequences]],
        title=f"observe: {args.dataset}",
    ))
    return 0


def cmd_serve(args) -> int:
    """Run the request-level serving simulation."""
    bundle = _build(args)
    platform = default_platform()
    calibration = _calibrate(bundle)
    rows = []
    for name in args.engines:
        engine = build_engine(name, bundle, platform,
                              expert_cache_ratio=args.ecr,
                              calibration_probs=calibration)
        generator = SequenceGenerator(
            get_dataset(args.dataset), bundle.vocab, seed=args.seed + 5
        )
        simulator = ServingSimulator(engine, generator,
                                     concurrency=args.concurrency,
                                     mode=args.mode)
        arrivals = poisson_arrivals(
            args.rate, args.requests,
            np.random.default_rng(args.seed + 6),
        )
        report = simulator.run(arrivals, args.input_len, args.output_len)
        rows.append([
            name,
            report.throughput_tokens_per_s,
            report.ttft_percentile(50), report.ttft_percentile(95),
            report.latency_percentile(95),
            report.mean_queue_delay_s,
        ])
    print(format_table(
        ["engine", "tok/s", "TTFT p50 (s)", "TTFT p95 (s)",
         "latency p95 (s)", "queue (s)"],
        rows,
        title=f"serve: {args.requests} requests @ {args.rate}/s "
              f"({args.dataset})",
    ))
    return 0


def cmd_serve_cluster(args) -> int:
    """Run the multi-replica cluster serving simulation."""
    bundle = _build(args)
    platform = default_platform()
    calibration = _calibrate(bundle)
    rng = np.random.default_rng(args.seed + 6)
    if args.arrivals == "bursty":
        arrivals = bursty_arrivals(args.rate, args.requests, rng)
    else:
        arrivals = poisson_arrivals(args.rate, args.requests, rng)
    sample_indices = None
    if args.clusters:
        sample_indices = [i % args.clusters for i in range(args.requests)]
    rows = []
    report = None
    for policy_name in args.policies:
        engines = [
            build_engine(args.engine, bundle, platform,
                         expert_cache_ratio=args.ecr,
                         calibration_probs=calibration)
            for _ in range(args.replicas)
        ]
        generator = SequenceGenerator(
            get_dataset(args.dataset), bundle.vocab, seed=args.seed + 5
        )
        simulator = ClusterSimulator(
            engines, generator, build_policy(policy_name),
            admission=AdmissionController(
                max_queue_len=args.max_queue,
                ttft_deadline_s=args.ttft_deadline,
                batch_hold_s=args.batch_hold,
                # Prompts at/above the crossover saturate a solo kernel
                # already, so holding them buys nothing.
                crossover_tokens=(
                    engines[0].cost_model.batch_crossover_tokens(platform.gpu)
                    if args.batch_hold > 0 else 0
                ),
            ),
            slo=SLOTarget(ttft_s=args.slo_ttft, tpot_s=args.slo_tpot),
            concurrency=args.concurrency,
            mode=args.mode,
        )
        report = simulator.run(arrivals, args.input_len, args.output_len,
                               sample_indices=sample_indices)
        rows.append([
            policy_name,
            report.goodput_tokens_per_s,
            f"{100 * report.slo_attainment:.0f}%",
            report.ttft_percentile(50), report.ttft_percentile(99),
            f"{100 * report.mean_warm_hit_rate:.0f}%",
            report.load_balance_index,
            f"{report.n_shed}/{report.n_expired}",
        ])
    print(format_table(
        ["policy", "goodput tok/s", "SLO", "TTFT p50 (s)", "TTFT p99 (s)",
         "cache warm", "balance", "shed/expired"],
        rows,
        title=f"serve-cluster: {args.engine} x{args.replicas}, "
              f"{args.requests} requests @ {args.rate}/s "
              f"({args.arrivals}, {args.dataset})",
    ))
    if args.json and report is not None:
        with open(args.json, "w") as handle:
            handle.write(report.to_json())
        print(f"cluster report ({args.policies[-1]}) written to {args.json}")
    return 0


def cmd_watch(args) -> int:
    """Stream live lifecycle events from a serving simulation."""
    from repro.events import EVENT_KINDS, JsonlEventWriter, format_event

    bundle = _build(args)
    platform = default_platform()
    calibration = _calibrate(bundle)
    engine = build_engine(args.engine, bundle, platform,
                          expert_cache_ratio=args.ecr,
                          calibration_probs=calibration)
    generator = SequenceGenerator(
        get_dataset(args.dataset), bundle.vocab, seed=args.seed + 5
    )
    simulator = ServingSimulator(engine, generator,
                                 concurrency=args.concurrency,
                                 mode=args.mode)
    counts: dict = {}

    def on_event(event) -> None:
        counts[event.kind] = counts.get(event.kind, 0) + 1
        print(format_event(event))

    kinds = tuple(args.kinds) if args.kinds else None
    simulator.events.subscribe(on_event, kinds=kinds)
    writer = None
    if args.jsonl:
        writer = JsonlEventWriter(args.jsonl)
        simulator.events.subscribe(writer)
    arrivals = poisson_arrivals(
        args.rate, args.requests, np.random.default_rng(args.seed + 6)
    )
    report = simulator.run(arrivals, args.input_len, args.output_len)
    if writer is not None:
        writer.close()
        print(f"{writer.n_written} event(s) written to {args.jsonl}")
    breakdown = "  ".join(
        f"{kind}={counts[kind]}" for kind in EVENT_KINDS if kind in counts
    )
    print(f"watched {report.n_requests} request(s) on {args.engine} "
          f"({args.mode}, concurrency {args.concurrency}): "
          f"{sum(counts.values())} event(s) [{breakdown}]")
    return 0


def cmd_perf_delta(args) -> int:
    """Gate a candidate benchmark artifact against its baseline."""
    from repro.perf import diff_benchmarks, load_benchmark

    try:
        baseline = load_benchmark(args.baseline)
        candidate = load_benchmark(args.candidate)
        report = diff_benchmarks(baseline, candidate,
                                 threshold=args.threshold)
    except (OSError, ValueError) as exc:
        print(f"perf-delta error: {exc}")
        return 2
    print(report.format())
    return 0 if report.ok else 1


def _scenario_backend(args, bundle, platform, calibration):
    """Build the serving backend one scenario run drives."""
    if args.replicas > 1:
        engines = [
            build_engine(args.engine, bundle, platform,
                         expert_cache_ratio=args.ecr,
                         calibration_probs=calibration)
            for _ in range(args.replicas)
        ]
        return ClusterSimulator(
            engines, None, build_policy(args.policy),
            concurrency=args.concurrency,
            mode=args.mode,
        )
    engine = build_engine(args.engine, bundle, platform,
                          expert_cache_ratio=args.ecr,
                          calibration_probs=calibration)
    return ServingSimulator(engine, concurrency=args.concurrency,
                            mode=args.mode)


def _scenarios_compare(paths) -> int:
    """Diff two scenario-report JSON files; 0 iff digests match."""
    import json

    payloads = []
    for path in paths:
        with open(path) as handle:
            payloads.append(json.load(handle))
    a, b = payloads
    if a.get("digest") and a.get("digest") == b.get("digest"):
        print(f"reports identical (digest {a['digest']})")
        return 0
    print(f"digest: {a.get('digest')} != {b.get('digest')}")
    for key in sorted(set(a.get("summary", {})) | set(b.get("summary", {}))):
        va = a.get("summary", {}).get(key)
        vb = b.get("summary", {}).get(key)
        if va != vb:
            print(f"summary.{key}: {va!r} != {vb!r}")
    for field in ("scenario", "engine", "mode", "seed"):
        if a.get(field) != b.get(field):
            print(f"{field}: {a.get(field)!r} != {b.get(field)!r}")
    return 1


def cmd_scenarios(args) -> int:
    """Scenario library: list, run, replay, and compare scenarios."""
    import os

    from repro.scenarios import SCENARIO_NAMES, ScenarioRunner, get_scenario
    from repro.workloads.replay import (
        load_request_specs,
        record_request_specs,
        save_workload,
    )

    if args.action == "list":
        rows = []
        for name in SCENARIO_NAMES:
            spec = get_scenario(name)
            rows.append([
                name, spec.arrival.kind, spec.arrival.n_requests,
                len(spec.tenants), spec.description,
            ])
        print(format_table(
            ["scenario", "arrivals", "requests", "tenants", "description"],
            rows, title="registered scenarios",
        ))
        return 0

    if args.action == "compare":
        if len(args.names) != 2:
            print("compare takes exactly two report JSON paths")
            return 2
        return _scenarios_compare(args.names)

    if args.action == "replay":
        if args.workload is None or len(args.names) != 1:
            print("replay takes exactly one scenario name and --workload")
            return 2
        names = list(args.names)
    else:  # run
        names = list(args.names) if args.names else list(SCENARIO_NAMES)
        if args.all:
            names = list(SCENARIO_NAMES)
        unknown = [n for n in names if n not in SCENARIO_NAMES]
        if unknown:
            print(f"unknown scenario(s): {unknown}; known: "
                  f"{list(SCENARIO_NAMES)}")
            return 2

    lifecycle = (args.resume_from is not None
                 or args.pause_after is not None)
    if args.pause_after is not None and not args.checkpoint_to:
        print("--pause-after needs --checkpoint-to PATH to save into")
        return 2
    if lifecycle and len(names) != 1:
        print("--resume-from/--pause-after operate on exactly one "
              "scenario")
        return 2

    bundle = _build(args)
    platform = default_platform()
    calibration = _calibrate(bundle)
    for directory in (args.out_dir, args.record):
        if directory:
            os.makedirs(directory, exist_ok=True)
    rows = []
    for name in names:
        spec = get_scenario(name)
        runner = ScenarioRunner(spec, bundle.vocab, seed=args.seed,
                                fast=args.fast)
        requests = None
        if args.action == "replay":
            requests = load_request_specs(args.workload)
        backend = _scenario_backend(args, bundle, platform, calibration)
        if not lifecycle:
            report = runner.run(backend, requests=requests)
        else:
            from repro.serving import (
                CheckpointError,
                load_checkpoint,
                save_checkpoint,
            )

            try:
                if args.resume_from:
                    session = runner.resume(
                        backend, load_checkpoint(args.resume_from),
                        requests=requests,
                    )
                    print(f"resumed {name} from {args.resume_from}")
                else:
                    session = runner.begin(backend, requests=requests)
            except CheckpointError as exc:
                print(f"cannot resume: {exc}")
                return 1
            alive = True
            if args.pause_after is not None:
                ticks = 0
                while alive and ticks < args.pause_after:
                    alive = runner.tick(backend, session)
                    ticks += 1
            while alive and args.pause_after is None:
                alive = runner.tick(backend, session)
            if alive:
                save_checkpoint(args.checkpoint_to,
                                backend.checkpoint(session.backend))
                print(f"{name} paused after {args.pause_after} tick(s); "
                      f"checkpoint written to {args.checkpoint_to} "
                      f"(resume with --resume-from)")
                return 0
            report = runner.finish(backend, session)
        if args.record:
            specs = requests if requests is not None \
                else runner.build_requests()
            workload_path = os.path.join(args.record,
                                         f"{name}.workload.json")
            save_workload(workload_path,
                          record_request_specs(specs, label=name))
            print(f"workload recorded to {workload_path}")
        if args.out_dir:
            report_path = os.path.join(args.out_dir, f"{name}.json")
            with open(report_path, "w") as handle:
                handle.write(report.to_json())
                handle.write("\n")
        summary = report.to_dict()["summary"]
        rows.append([
            name, report.mode, f"{summary['served']}/{summary['offered']}",
            f"{100 * summary['slo_attainment']:.0f}%",
            summary["throughput_tokens_per_s"],
            summary["ttft_p95_s"],
            report.content_digest()[:12],
        ])
    print(format_table(
        ["scenario", "mode", "served", "SLO", "tok/s", "TTFT p95 (s)",
         "digest"],
        rows,
        title=f"scenarios {args.action}: {args.engine} "
              f"x{args.replicas}, seed {args.seed}"
              + (" (fast)" if args.fast else ""),
    ))
    if args.out_dir:
        print(f"report JSON written to {args.out_dir}/")
    return 0


def _length_pairs(input_lens: list, output_lens: list) -> list:
    """Zip sweepable ``--input-len``/``--output-len`` values pairwise.

    Equal-length lists pair positionally; a length-one list broadcasts
    against the other.  Anything else is ambiguous and rejected.
    """
    if len(input_lens) == len(output_lens):
        return list(zip(input_lens, output_lens))
    if len(input_lens) == 1:
        return [(input_lens[0], ol) for ol in output_lens]
    if len(output_lens) == 1:
        return [(il, output_lens[0]) for il in input_lens]
    raise SystemExit(
        "--input-len and --output-len must have equal lengths "
        f"(or one value to broadcast); got {len(input_lens)} and "
        f"{len(output_lens)}"
    )


def cmd_bench_batch(args) -> int:
    """Benchmark continuous batching across lengths, batch sizes, modes."""
    import json

    from repro.core.engine import SequenceRequest
    from repro.hardware.timeline import GPU
    from repro.sched import GATHERED, INTERLEAVED, ContinuousBatchScheduler

    bundle = _build(args)
    platform = default_platform()
    calibration = _calibrate(bundle)
    pairs = _length_pairs(args.input_len, args.output_len)
    rows = []
    payload = {
        "model": args.model,
        "dataset": args.dataset,
        "requests": args.requests,
        "input_len": (args.input_len[0] if len(args.input_len) == 1
                      else list(args.input_len)),
        "output_len": (args.output_len[0] if len(args.output_len) == 1
                       else list(args.output_len)),
        "runs": [],
        "comparison": [],
    }
    throughput: dict = {}
    for name in args.engines:
        for input_len, output_len in pairs:
            generator = SequenceGenerator(
                get_dataset(args.dataset), bundle.vocab, seed=args.seed + 8
            )
            requests = []
            for i in range(args.requests):
                sequence = generator.sample_sequence(
                    input_len, output_len, sample_idx=i
                )
                requests.append(SequenceRequest(
                    prompt_tokens=sequence.prompt_tokens,
                    max_new_tokens=output_len,
                    forced_tokens=sequence.continuation_tokens,
                    seq_id=i,
                ))
            for batch_size in args.batch_sizes:
                for mode in args.modes:
                    engine = build_engine(name, bundle, platform,
                                          expert_cache_ratio=args.ecr,
                                          calibration_probs=calibration)
                    scheduler = ContinuousBatchScheduler(
                        engine, max_batch=batch_size, mode=mode
                    )
                    report = scheduler.run(requests)
                    throughput[(name, input_len, output_len,
                                batch_size, mode)] = \
                        report.throughput_tokens_per_s
                    prefill = report.phase_gather_stats()["prefill"]
                    rows.append([
                        name, f"{input_len}/{output_len}", batch_size, mode,
                        report.makespan_s,
                        f"{100 * report.overlap_ratio:.1f}%",
                        report.throughput_tokens_per_s,
                        report.mean_ttft_s(),
                        f"{report.n_expert_kernels}/{report.n_expert_ops}",
                        f"{prefill['expert_kernels']}"
                        f"/{prefill['expert_ops']}",
                        f"{100 * report.occupancy(GPU):.0f}%",
                    ])
                    run = json.loads(report.to_json())
                    run["input_len"] = input_len
                    run["output_len"] = output_len
                    payload["runs"].append(run)
            if set(args.modes) >= {GATHERED, INTERLEAVED}:
                for batch_size in args.batch_sizes:
                    base = throughput[(name, input_len, output_len,
                                       batch_size, INTERLEAVED)]
                    gath = throughput[(name, input_len, output_len,
                                       batch_size, GATHERED)]
                    payload["comparison"].append({
                        "engine": name,
                        "input_len": input_len,
                        "output_len": output_len,
                        "max_batch": batch_size,
                        "interleaved_tokens_per_s": base,
                        "gathered_tokens_per_s": gath,
                        "gathered_speedup": gath / base if base > 0 else 0.0,
                    })
    lengths_label = ", ".join(f"{il}/{ol}" for il, ol in pairs)
    print(format_table(
        ["engine", "in/out", "batch", "mode", "makespan (s)", "overlap",
         "tok/s", "mean TTFT (s)", "kernels/ops", "prefill k/ops",
         "GPU busy"],
        rows,
        title=f"bench-batch: {args.requests} requests, in/out "
              f"{lengths_label} ({args.dataset})",
    ))
    for entry in payload["comparison"]:
        print(
            f"{entry['engine']} @ {entry['input_len']}/"
            f"{entry['output_len']} batch {entry['max_batch']}: gathered "
            f"{entry['gathered_tokens_per_s']:.2f} tok/s vs interleaved "
            f"{entry['interleaved_tokens_per_s']:.2f} tok/s "
            f"({entry['gathered_speedup']:.2f}x)"
        )
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(json.dumps(payload, indent=2, sort_keys=True))
        print(f"batch report written to {args.json}")
    return 0


def cmd_trace(args) -> int:
    """Analyze one generation's schedule; optionally dump a Chrome trace."""
    bundle = _build(args)
    platform = default_platform()
    calibration = _calibrate(bundle)
    engine = build_engine(args.engine, bundle, platform,
                          expert_cache_ratio=args.ecr,
                          calibration_probs=calibration)
    generator = SequenceGenerator(
        get_dataset(args.dataset), bundle.vocab, seed=args.seed + 7
    )
    sequence = generator.sample_sequence(args.input_len, args.output_len,
                                         sample_idx=0)
    result = engine.generate(sequence.prompt_tokens, args.output_len,
                             forced_tokens=sequence.continuation_tokens)
    print(f"engine: {args.engine}  "
          f"tok/s: {result.stats.tokens_per_second:.2f}  "
          f"tok/kJ: {result.stats.tokens_per_kilojoule:.2f}")
    print(summarize_schedule(result.timeline))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(timeline_to_chrome_trace(
                result.timeline, process_name=args.engine
            ))
        print(f"chrome trace written to {args.output}")
    return 0


def cmd_audit(args) -> int:
    """Differential + step-parity + resume-parity audit of every engine."""
    from repro.audit import (
        run_differential_audit,
        run_resume_parity_audit,
        run_step_parity_audit,
    )
    from repro.perf import TensorCache

    bundle = _build(args)
    platform = default_platform()
    calibration = _calibrate(bundle)
    cache = None
    if args.cache_mb > 0:
        cache = TensorCache(max_bytes=args.cache_mb * 1024 * 1024)
    report = run_differential_audit(
        bundle, platform,
        engine_names=args.engines,
        seeds=tuple(range(args.seed, args.seed + args.seeds)),
        prompt_len=args.input_len,
        max_new_tokens=args.output_len,
        expert_cache_ratio=args.ecr,
        calibration_probs=calibration,
        compute_cache=cache,
        cache_parity=cache is not None,
    )
    print(format_table(
        ["engine", "seed", "identical", "divergent", "mispredicted",
         "audit"],
        report.rows(),
        title=f"audit vs {report.oracle}: {args.model}, "
              f"{args.seeds} seed(s), in/out "
              f"{args.input_len}/{args.output_len}, ECR {args.ecr:.1%}",
    ))
    parity = run_step_parity_audit(
        bundle, platform,
        engine_names=args.engines,
        seeds=(args.seed,),
        prompt_len=args.input_len,
        max_new_tokens=args.output_len,
        expert_cache_ratio=args.ecr,
        calibration_probs=calibration,
        compute_cache=cache,
    )
    print(parity.format())
    resume = run_resume_parity_audit(
        bundle, platform,
        engine_names=args.engines,
        seeds=(args.seed,),
        prompt_len=args.input_len,
        max_new_tokens=args.output_len,
        expert_cache_ratio=args.ecr,
        calibration_probs=calibration,
    )
    print(resume.format())
    if cache is not None:
        stats = cache.stats()
        print(f"compute cache: {stats['hits']} hit(s) / "
              f"{stats['misses']} miss(es), {stats['entries']} entries, "
              f"{stats['current_bytes'] / 1e6:.1f} MB used, "
              f"{stats['evictions']} eviction(s); cache parity asserted "
              "bitwise per engine")
    if not report.ok or not parity.ok or not resume.ok:
        for problem in report.problems + parity.problems + resume.problems:
            print(f"AUDIT FAILURE: {problem}")
        return 1
    print(f"audit ok: {len(report.comparisons)} comparison(s), "
          f"{len(report.oracle_audits)} oracle audit(s), "
          f"{len(parity.comparisons)} step-parity comparison(s), "
          f"{len(resume.comparisons)} resume-parity comparison(s)")
    return 0


def cmd_bench_compute(args) -> int:
    """Cold-vs-warm benchmark of the content-addressed compute cache."""
    import json

    from repro.model.config import SimSpec
    from repro.perf import bench_compute

    if args.model != "tiny" and args.sim_width:
        # A wider functional model than the test-speed default: the bench
        # measures *compute* savings, which the 64-wide SimSpec understates
        # (per-op scheduling bookkeeping dominates it).
        sim = SimSpec(d_model=args.sim_width, n_heads=4, n_kv_heads=2,
                      d_ff=2 * args.sim_width)
        bundle = _BUILDERS[args.model](seed=args.seed, n_blocks=args.blocks,
                                       sim=sim)
    else:
        bundle = _build(args)
    platform = default_platform()
    calibration = _calibrate(bundle)
    payload = bench_compute(
        bundle, platform,
        seeds=tuple(range(args.seed, args.seed + args.seeds)),
        prompt_len=args.input_len,
        max_new_tokens=args.output_len,
        expert_cache_ratio=args.ecr,
        calibration_probs=calibration,
        sweep_len=args.sweep_len,
        max_bytes=args.cache_mb * 1024 * 1024,
    )
    rows = []
    for key, label in (("differential_audit", "differential audit"),
                       ("ecr_sweep", "fig10 ECR sweep")):
        section = payload[key]
        stats = section["cache"]
        rows.append([
            label, f"{section['cold_s']:.3f}", f"{section['warm_s']:.3f}",
            f"{section['speedup']:.2f}x",
            f"{stats['hits']}/{stats['hits'] + stats['misses']}",
            stats["entries"], stats["evictions"],
        ])
    print(format_table(
        ["workload", "cold (s)", "warm (s)", "speedup", "hits/lookups",
         "entries", "evictions"],
        rows,
        title=f"bench-compute: {args.model}, audit {args.seeds} seed(s) "
              f"in/out {args.input_len}/{args.output_len}, sweep in/out "
              f"{args.sweep_len}/{args.sweep_len}",
    ))
    for key, label in (("differential_audit", "audit"),
                       ("ecr_sweep", "sweep")):
        warm = payload[key]["stages_warm"]
        detail = "  ".join(
            f"{stage}={100 * s['hit_rate']:.0f}%"
            for stage, s in warm.items()
        )
        print(f"warm hit rates ({label}): {detail}")
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(json.dumps(payload, indent=2, sort_keys=True))
        print(f"compute benchmark written to {args.json}")
    ok = payload["criteria"]
    print(f"criteria: audit >=2x warm speedup: "
          f"{'PASS' if ok['audit_warm_speedup_ge_2x'] else 'FAIL'}, "
          f"sweep >=2x warm speedup: "
          f"{'PASS' if ok['sweep_warm_speedup_ge_2x'] else 'FAIL'}")
    return 0


def cmd_lint(args) -> int:
    """Run the daoplint static analyzer (see docs/linting.md)."""
    from repro.lint.runner import main as lint_main

    argv = list(args.paths)
    if args.select:
        argv += ["--select", *args.select]
    if args.list_rules:
        argv.append("--list-rules")
    if args.semantic:
        argv.append("--semantic")
    if args.sarif:
        argv += ["--sarif", args.sarif]
    if args.semantic_cache:
        argv += ["--semantic-cache", args.semantic_cache]
    if args.max_seconds is not None:
        argv += ["--max-seconds", str(args.max_seconds)]
    if args.list_suppressions:
        argv.append("--list-suppressions")
    return lint_main(argv)


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="DAOP reproduction command-line tools"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="model + platform summary")
    _add_common(p_info)
    p_info.set_defaults(func=cmd_info)

    p_speed = sub.add_parser("speed", help="engine throughput comparison")
    _add_common(p_speed)
    p_speed.add_argument("--engines", nargs="+", default=DEFAULT_ENGINES,
                         choices=ENGINE_NAMES)
    p_speed.add_argument("--dataset", default="sharegpt")
    p_speed.add_argument("--input-len", type=int, default=64)
    p_speed.add_argument("--output-len", type=int, default=64)
    p_speed.add_argument("--sequences", type=int, default=1)
    p_speed.set_defaults(func=cmd_speed)

    p_acc = sub.add_parser("accuracy", help="task accuracy vs the oracle")
    _add_common(p_acc)
    p_acc.add_argument("--engines", nargs="+", default=("daop",),
                       choices=ENGINE_NAMES)
    p_acc.add_argument("--task", default="triviaqa")
    p_acc.add_argument("--samples", type=int, default=8)
    p_acc.set_defaults(func=cmd_accuracy)

    p_obs = sub.add_parser("observe", help="routing statistics")
    _add_common(p_obs)
    p_obs.add_argument("--dataset", default="c4")
    p_obs.add_argument("--sequences", type=int, default=3)
    p_obs.set_defaults(func=cmd_observe)

    p_serve = sub.add_parser("serve", help="serving simulation")
    _add_common(p_serve)
    p_serve.add_argument("--engines", nargs="+", default=("fiddler", "daop"),
                         choices=ENGINE_NAMES)
    p_serve.add_argument("--dataset", default="sharegpt")
    p_serve.add_argument("--rate", type=float, default=0.05,
                         help="mean request arrival rate per second")
    p_serve.add_argument("--requests", type=int, default=4)
    p_serve.add_argument("--input-len", type=int, default=48)
    p_serve.add_argument("--output-len", type=int, default=48)
    p_serve.add_argument("--concurrency", type=int, default=1,
                         help="concurrent sequences per engine")
    p_serve.add_argument("--mode", choices=("gathered", "interleaved"),
                         default="gathered",
                         help="scheduler execution mode")
    p_serve.set_defaults(func=cmd_serve)

    p_watch = sub.add_parser(
        "watch", help="live event stream from a serving simulation"
    )
    _add_common(p_watch)
    p_watch.add_argument("--engine", default="daop", choices=ENGINE_NAMES)
    p_watch.add_argument("--dataset", default="sharegpt")
    p_watch.add_argument("--rate", type=float, default=0.05,
                         help="mean request arrival rate per second")
    p_watch.add_argument("--requests", type=int, default=3)
    p_watch.add_argument("--input-len", type=int, default=24)
    p_watch.add_argument("--output-len", type=int, default=12)
    p_watch.add_argument("--concurrency", type=int, default=2,
                         help="concurrent sequences per engine")
    p_watch.add_argument("--mode", choices=("gathered", "interleaved"),
                         default="gathered",
                         help="scheduler execution mode")
    p_watch.add_argument("--kinds", nargs="+", default=None,
                         help="only stream these event kinds "
                              "(default: all)")
    p_watch.add_argument("--jsonl", default=None,
                         help="also append every event to this JSONL log")
    p_watch.set_defaults(func=cmd_watch)

    p_cluster = sub.add_parser(
        "serve-cluster", help="multi-replica cluster serving simulation"
    )
    _add_common(p_cluster)
    p_cluster.add_argument("--engine", default="daop", choices=ENGINE_NAMES)
    p_cluster.add_argument("--replicas", type=int, default=2)
    p_cluster.add_argument("--policies", nargs="+",
                           default=("round-robin", "cache-affinity"),
                           choices=POLICY_NAMES)
    p_cluster.add_argument("--arrivals", choices=("poisson", "bursty"),
                           default="poisson")
    p_cluster.add_argument("--dataset", default="sharegpt")
    p_cluster.add_argument("--rate", type=float, default=0.05,
                           help="mean request arrival rate per second")
    p_cluster.add_argument("--requests", type=int, default=8)
    p_cluster.add_argument("--clusters", type=int, default=3,
                           help="similarity clusters in the workload "
                                "(0 = every request unique)")
    p_cluster.add_argument("--input-len", type=int, default=32)
    p_cluster.add_argument("--output-len", type=int, default=16)
    p_cluster.add_argument("--max-queue", type=int, default=8,
                           help="waiting-request bound per replica")
    p_cluster.add_argument("--ttft-deadline", type=float, default=None,
                           help="expire queued requests past this TTFT "
                                "deadline (seconds)")
    p_cluster.add_argument("--batch-hold", type=float, default=0.0,
                           help="hold a lone sub-crossover prefill this "
                                "many seconds hoping a batchmate arrives "
                                "(0 = dispatch immediately)")
    p_cluster.add_argument("--slo-ttft", type=float, default=30.0,
                           help="TTFT SLO target in seconds")
    p_cluster.add_argument("--slo-tpot", type=float, default=1.0,
                           help="TPOT SLO target in seconds")
    p_cluster.add_argument("--json", default=None,
                           help="write the last policy's ClusterReport "
                                "JSON here")
    p_cluster.add_argument("--concurrency", type=int, default=1,
                           help="concurrent sequences per replica")
    p_cluster.add_argument("--mode", choices=("gathered", "interleaved"),
                           default="gathered",
                           help="per-replica scheduler execution mode")
    p_cluster.set_defaults(func=cmd_serve_cluster)

    p_scen = sub.add_parser(
        "scenarios", help="scenario library: list/run/replay/compare"
    )
    _add_common(p_scen)
    p_scen.add_argument("action",
                        choices=("list", "run", "replay", "compare"),
                        help="list the registry, run scenarios, replay a "
                             "recorded workload, or diff two report JSONs")
    p_scen.add_argument("names", nargs="*",
                        help="scenario names (run/replay) or two report "
                             "paths (compare); run defaults to all")
    p_scen.add_argument("--all", action="store_true",
                        help="run every registered scenario")
    p_scen.add_argument("--engine", default="daop", choices=ENGINE_NAMES)
    p_scen.add_argument("--replicas", type=int, default=1,
                        help="replica count; >1 uses the cluster "
                             "simulator")
    p_scen.add_argument("--policy", default="round-robin",
                        choices=POLICY_NAMES,
                        help="routing policy when --replicas > 1")
    p_scen.add_argument("--concurrency", type=int, default=1,
                        help="concurrent sequences per engine")
    p_scen.add_argument("--fast", action="store_true",
                        help="smoke mode: cap request counts and token "
                             "lengths (CI)")
    p_scen.add_argument("--out-dir", default=None,
                        help="write one ScenarioReport JSON per scenario "
                             "here")
    p_scen.add_argument("--record", default=None,
                        help="record each scenario's materialized "
                             "workload (v2 JSON) into this directory")
    p_scen.add_argument("--workload", default=None,
                        help="recorded workload file to replay "
                             "(replay action)")
    p_scen.add_argument("--mode", choices=("gathered", "interleaved"),
                        default="gathered",
                        help="backend scheduler execution mode")
    p_scen.add_argument("--pause-after", type=int, default=None,
                        metavar="TICKS",
                        help="pause the (single) scenario after this many "
                             "backend ticks and checkpoint it")
    p_scen.add_argument("--checkpoint-to", default=None, metavar="PATH",
                        help="where --pause-after writes the checkpoint")
    p_scen.add_argument("--resume-from", default=None, metavar="PATH",
                        help="resume the (single) scenario from a "
                             "checkpoint file instead of starting fresh")
    p_scen.set_defaults(func=cmd_scenarios)

    p_batch = sub.add_parser(
        "bench-batch", help="continuous-batching benchmark"
    )
    _add_common(p_batch)
    p_batch.add_argument("--engines", nargs="+",
                         default=("fiddler", "daop"),
                         choices=ENGINE_NAMES)
    p_batch.add_argument("--dataset", default="sharegpt")
    p_batch.add_argument("--requests", type=int, default=4)
    p_batch.add_argument("--batch-sizes", nargs="+", type=int,
                         default=(1, 2, 4),
                         help="max_batch values to sweep")
    p_batch.add_argument("--input-len", type=int, nargs="+", default=[32],
                         help="prompt lengths to sweep (pairs with "
                              "--output-len; one value broadcasts)")
    p_batch.add_argument("--output-len", type=int, nargs="+", default=[16],
                         help="decode lengths to sweep (pairs with "
                              "--input-len; one value broadcasts)")
    p_batch.add_argument("--modes", nargs="+",
                         default=("interleaved", "gathered"),
                         choices=("interleaved", "gathered"),
                         help="scheduler execution modes to compare")
    p_batch.add_argument("--json", default=None,
                         help="write the full batch report JSON here")
    p_batch.set_defaults(func=cmd_bench_batch)

    p_trace = sub.add_parser("trace", help="schedule analysis")
    _add_common(p_trace)
    p_trace.add_argument("--engine", default="daop", choices=ENGINE_NAMES)
    p_trace.add_argument("--dataset", default="sharegpt")
    p_trace.add_argument("--input-len", type=int, default=48)
    p_trace.add_argument("--output-len", type=int, default=32)
    p_trace.add_argument("--output", default=None,
                         help="write a Chrome trace JSON here")
    p_trace.set_defaults(func=cmd_trace)

    p_audit = sub.add_parser(
        "audit", help="cross-engine differential + invariant audit"
    )
    _add_common(p_audit)
    p_audit.add_argument("--engines", nargs="+", default=None,
                         choices=ENGINE_NAMES,
                         help="engines to audit (default: all but the "
                              "oracle)")
    p_audit.add_argument("--seeds", type=int, default=3,
                         help="number of seeded prompts in the matrix")
    p_audit.add_argument("--input-len", type=int, default=16)
    p_audit.add_argument("--output-len", type=int, default=12)
    p_audit.add_argument("--cache-mb", type=int, default=256,
                         help="shared compute-cache budget in MB; the "
                              "audit then also asserts bitwise cache "
                              "parity per engine (0 disables)")
    p_audit.set_defaults(func=cmd_audit)

    p_bcompute = sub.add_parser(
        "bench-compute",
        help="cold-vs-warm benchmark of the forward-compute cache",
    )
    _add_common(p_bcompute)
    p_bcompute.add_argument("--seeds", type=int, default=3,
                            help="seeded prompts in the audit workload")
    p_bcompute.add_argument("--input-len", type=int, default=16)
    p_bcompute.add_argument("--output-len", type=int, default=12)
    p_bcompute.add_argument("--sweep-len", type=int, default=32,
                            help="in/out length of the fig10-style "
                                 "ECR-sweep workload")
    p_bcompute.add_argument("--cache-mb", type=int, default=256,
                            help="compute-cache byte budget in MB")
    p_bcompute.add_argument("--sim-width", type=int, default=256,
                            help="functional d_model for mixtral/phi: the "
                                 "bench measures compute savings, so it "
                                 "defaults wider than the test-speed "
                                 "SimSpec (tiny ignores this)")
    p_bcompute.add_argument("--json", default=None,
                            help="write BENCH_compute.json here")
    p_bcompute.set_defaults(func=cmd_bench_compute)

    p_delta = sub.add_parser(
        "perf-delta",
        help="benchmark regression gate: diff two BENCH_*.json artifacts",
    )
    p_delta.add_argument("baseline",
                         help="committed baseline benchmark JSON")
    p_delta.add_argument("candidate",
                         help="freshly produced benchmark JSON to gate")
    p_delta.add_argument("--threshold", type=float, default=0.15,
                         help="maximum tolerated relative regression "
                              "(default 0.15 = 15%%)")
    p_delta.set_defaults(func=cmd_perf_delta)

    p_lint = sub.add_parser(
        "lint", help="daoplint: AST-based invariant checker"
    )
    p_lint.add_argument("paths", nargs="*",
                        help="files/directories to lint (default: the "
                             "installed repro package)")
    p_lint.add_argument("--select", nargs="+", metavar="RULE",
                        help="run only these rules (names or codes)")
    p_lint.add_argument("--semantic", action="store_true",
                        help="also run the whole-program semantic "
                             "analyses (docs/static-analysis.md)")
    p_lint.add_argument("--sarif", metavar="PATH",
                        help="write the report as SARIF 2.1.0")
    p_lint.add_argument("--semantic-cache", metavar="PATH",
                        help="reuse/store semantic findings across runs")
    p_lint.add_argument("--max-seconds", type=float, metavar="S",
                        help="fail if semantic analysis exceeds this "
                             "wall-clock budget")
    p_lint.add_argument("--list-suppressions", action="store_true",
                        help="audit suppression markers (flags stale "
                             "ones)")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    p_lint.set_defaults(func=cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
