"""daoplint: AST-based invariant checker + runtime contracts for DAOP.

The reproduction rests on invariants the paper states in prose but code
cannot express locally: migration is prefill-only (SS IV-B, Algorithm 1),
prediction fires only from the configured start block onward (SS IV-C),
every engine compares on an identical substrate, and the simulation is
deterministic end-to-end.  This package enforces them mechanically:

- a static analyzer (``repro lint`` / ``python -m repro.lint``) with a
  pluggable rule registry, ``path:line:col`` diagnostics, and per-line
  ``# daoplint: disable=RULE`` suppressions
  (:mod:`repro.lint.runner`, :mod:`repro.lint.rules`);
- a whole-program semantic layer (``repro lint --semantic``) with a
  project index, call graph, CFGs, and flow-sensitive rule families
  (:mod:`repro.lint.semantics`); findings can be exported as SARIF
  (:mod:`repro.lint.sarif`) for GitHub code scanning;
- opt-in runtime contract validators for timeline monotonicity, slot
  budgets, and prefill-only migration (:mod:`repro.lint.contracts`).

See ``docs/linting.md`` for every rule and its paper justification and
``docs/static-analysis.md`` for the semantic framework.
"""

from repro.lint.contracts import (
    ContractViolation,
    EngineContractGuard,
    validate_slot_budget,
    validate_timeline,
)
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import (
    LintContext,
    Rule,
    all_rules,
    dotted_name,
    get_rule,
    register,
)
from repro.lint.runner import (
    LintReport,
    lint_paths,
    lint_source,
    package_root,
    run_lint,
)
from repro.lint.sarif import report_to_sarif, write_sarif
from repro.lint.semantics import (
    SemanticContext,
    SemanticRule,
    all_semantic_rules,
    get_semantic_rule,
    register_semantic,
    run_semantic_lint,
    semantic_lint_source,
)
from repro.lint.suppressions import SuppressionIndex, SuppressionMarker

__all__ = [
    "ContractViolation",
    "EngineContractGuard",
    "validate_slot_budget",
    "validate_timeline",
    "Diagnostic",
    "Severity",
    "LintContext",
    "Rule",
    "all_rules",
    "dotted_name",
    "get_rule",
    "register",
    "LintReport",
    "lint_paths",
    "lint_source",
    "package_root",
    "run_lint",
    "report_to_sarif",
    "write_sarif",
    "SemanticContext",
    "SemanticRule",
    "all_semantic_rules",
    "get_semantic_rule",
    "register_semantic",
    "run_semantic_lint",
    "semantic_lint_source",
    "SuppressionIndex",
    "SuppressionMarker",
]
