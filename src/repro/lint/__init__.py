"""daoplint: AST-based invariant checker + runtime contracts for DAOP.

The reproduction rests on invariants the paper states in prose but code
cannot express locally: migration is prefill-only (SS IV-B, Algorithm 1),
prediction fires only from the configured start block onward (SS IV-C),
every engine compares on an identical substrate, and the simulation is
deterministic end-to-end.  This package enforces them mechanically:

- a static analyzer (``repro lint`` / ``python -m repro.lint``) with a
  pluggable rule registry, ``path:line:col`` diagnostics, and per-line
  ``# daoplint: disable=RULE`` suppressions
  (:mod:`repro.lint.runner`, :mod:`repro.lint.rules`);
- opt-in runtime contract validators for timeline monotonicity, slot
  budgets, and prefill-only migration (:mod:`repro.lint.contracts`).

See ``docs/linting.md`` for every rule and its paper justification.
"""

from repro.lint.contracts import (
    ContractViolation,
    EngineContractGuard,
    validate_slot_budget,
    validate_timeline,
)
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import (
    LintContext,
    Rule,
    all_rules,
    dotted_name,
    get_rule,
    register,
)
from repro.lint.runner import (
    LintReport,
    lint_paths,
    lint_source,
    package_root,
    run_lint,
)
from repro.lint.suppressions import SuppressionIndex, SuppressionMarker

__all__ = [
    "ContractViolation",
    "EngineContractGuard",
    "validate_slot_budget",
    "validate_timeline",
    "Diagnostic",
    "Severity",
    "LintContext",
    "Rule",
    "all_rules",
    "dotted_name",
    "get_rule",
    "register",
    "LintReport",
    "lint_paths",
    "lint_source",
    "package_root",
    "run_lint",
    "SuppressionIndex",
    "SuppressionMarker",
]
