"""``python -m repro.lint`` runs the daoplint static analyzer."""

import sys

from repro.lint.runner import main

if __name__ == "__main__":
    sys.exit(main())
