"""Statement-level control-flow graphs for one function body.

Each statement of a function becomes one CFG node; edges follow the
possible orders of execution through ``if``/``while``/``for``/``try``
and early exits (``return``/``raise``/``break``/``continue``).  The
granularity is deliberately statements, not basic blocks: the functions
in this repository are small, and the flow-sensitive rules reason about
"which statements can run between X and Y", which a statement graph
answers directly.

Exception edges are approximated the usual conservative way: every
statement inside a ``try`` body may also jump to each of its handlers,
and a ``finally`` body runs on the way to whatever follows.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Synthetic exit node id (function return / fall-off-the-end).
EXIT = -1


@dataclass
class CFG:
    """Control-flow graph of one function body."""

    #: node id -> statement (ids are discovery order).
    stmts: dict = field(default_factory=dict)
    #: node id -> set of successor ids (may include :data:`EXIT`).
    succ: dict = field(default_factory=dict)
    #: id of the first executed statement (or EXIT for an empty body).
    entry: int = EXIT

    def add(self, stmt: ast.stmt) -> int:
        """Register a statement as a node and return its id."""
        node_id = len(self.stmts)
        self.stmts[node_id] = stmt
        self.succ[node_id] = set()
        return node_id

    def link(self, src: int, dst: int) -> None:
        """Add the edge ``src -> dst``."""
        self.succ[src].add(dst)

    def reachable_avoiding(self, start, blocked) -> bool:
        """Whether :data:`EXIT` is reachable from ``start`` while never
        *executing* a node in ``blocked`` (start itself is exempt).

        This is the primitive behind "on every path" checks: a property
        holds on every path from ``start`` to the exit iff the exit is
        unreachable once the property-establishing nodes are removed.
        """
        frontier = [start]
        seen = set()
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            for nxt in self.succ.get(node, ()):
                if nxt == EXIT:
                    return True
                if nxt in blocked or nxt in seen:
                    continue
                frontier.append(nxt)
        return False

    def topo_order(self):
        """Deterministic iteration order for fixpoint solving (ids)."""
        return sorted(self.stmts)


@dataclass
class _Frame:
    """Jump targets active while building nested statements."""

    break_to: object = None      # node-id list collecting break edges
    continue_to: int | None = None
    handlers: tuple = ()         # entry ids of active except handlers


def build_cfg(func: ast.AST) -> CFG:
    """Build the statement CFG of a function definition's body."""
    cfg = CFG()

    def handler_targets(frames):
        targets = []
        for frame in frames:
            targets.extend(frame.handlers)
        return targets

    def build_body(body, frames):
        """Wire ``body``; returns (entry ids, open tail ids).

        ``open tails`` are node ids whose fall-through successor is the
        statement that will follow the body; the caller links them.
        """
        entries = None
        tails = []
        for stmt in body:
            stmt_entries, stmt_tails = build_stmt(stmt, frames)
            if entries is None:
                entries = stmt_entries
            for tail in tails:
                for e in stmt_entries:
                    cfg.link(tail, e)
            tails = stmt_tails
            if not tails:
                break  # unreachable code after return/raise/...
        if entries is None:
            return [], []
        return entries, tails

    def build_stmt(stmt, frames):
        node = cfg.add(stmt)
        # Any statement inside a try body may raise into a handler.
        for target in handler_targets(frames):
            cfg.link(node, target)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            if not (isinstance(stmt, ast.Raise) and handler_targets(frames)):
                cfg.link(node, EXIT)
            return [node], []
        if isinstance(stmt, ast.Break):
            for frame in reversed(frames):
                if frame.break_to is not None:
                    frame.break_to.append(node)
                    return [node], []
            return [node], []
        if isinstance(stmt, ast.Continue):
            for frame in reversed(frames):
                if frame.continue_to is not None:
                    cfg.link(node, frame.continue_to)
                    return [node], []
            return [node], []
        if isinstance(stmt, ast.If):
            then_entries, then_tails = build_body(stmt.body, frames)
            else_entries, else_tails = build_body(stmt.orelse, frames)
            for e in then_entries:
                cfg.link(node, e)
            tails = list(then_tails) + list(else_tails)
            if else_entries:
                for e in else_entries:
                    cfg.link(node, e)
            else:
                tails.append(node)  # false branch falls through
            return [node], tails
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            breaks: list = []
            frame = _Frame(break_to=breaks, continue_to=node)
            body_entries, body_tails = build_body(
                stmt.body, frames + [frame]
            )
            for e in body_entries:
                cfg.link(node, e)
            for tail in body_tails:
                cfg.link(tail, node)  # back edge
            else_entries, else_tails = build_body(stmt.orelse, frames)
            tails = list(else_tails) + breaks
            if else_entries:
                for e in else_entries:
                    cfg.link(node, e)
            else:
                tails.append(node)  # loop condition exhausts / is false
            return [node], tails
        if isinstance(stmt, ast.Try):
            handler_entries = []
            handler_tails = []
            for handler in stmt.handlers:
                entries, tails = build_body(handler.body, frames)
                handler_entries.extend(entries)
                handler_tails.extend(tails)
                if not entries:
                    # Empty handler body: treat the bare handler as a
                    # fall-through point.
                    marker = cfg.add(handler)
                    handler_entries.append(marker)
                    handler_tails.append(marker)
            frame = _Frame(handlers=tuple(handler_entries))
            body_entries, body_tails = build_body(
                stmt.body, frames + [frame]
            )
            for e in body_entries:
                cfg.link(node, e)
            for target in handler_entries:
                cfg.link(node, target)
            else_entries, else_tails = build_body(stmt.orelse, frames)
            tails = []
            if else_entries:
                for tail in body_tails:
                    for e in else_entries:
                        cfg.link(tail, e)
                tails.extend(else_tails)
            else:
                tails.extend(body_tails)
            tails.extend(handler_tails)
            if stmt.finalbody:
                final_entries, final_tails = build_body(
                    stmt.finalbody, frames
                )
                if final_entries:
                    for tail in tails:
                        for e in final_entries:
                            cfg.link(tail, e)
                    tails = final_tails
            if not body_entries and not handler_entries:
                tails.append(node)
            return [node], tails
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            body_entries, body_tails = build_body(stmt.body, frames)
            for e in body_entries:
                cfg.link(node, e)
            return [node], (body_tails if body_entries else [node])
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            # Nested definitions: the def statement executes, the body
            # does not (it is analyzed as its own function).
            return [node], [node]
        # Generic compound statements (e.g. ``match``): route linearly
        # through every sub-body, which over-approximates reachability.
        sub_tails = [node]
        for sub_body in _sub_bodies(stmt):
            entries, tails = build_body(sub_body, frames)
            if entries:
                for e in entries:
                    cfg.link(node, e)
                sub_tails.extend(tails)
        return [node], sub_tails

    body = getattr(func, "body", [])
    entries, tails = build_body(body, [])
    if entries:
        cfg.entry = entries[0]
    for tail in tails:
        cfg.link(tail, EXIT)
    return cfg


def _sub_bodies(stmt):
    """Statement lists nested in an unrecognized compound statement."""
    for field_name in ("body", "orelse", "finalbody", "cases",
                      "handlers"):
        value = getattr(stmt, field_name, None)
        if not isinstance(value, list):
            continue
        if value and isinstance(value[0], ast.stmt):
            yield value
        else:
            for item in value or ():
                sub = getattr(item, "body", None)
                if isinstance(sub, list) and sub \
                        and isinstance(sub[0], ast.stmt):
                    yield sub
