"""A small forward dataflow framework over the statement CFG.

The abstract state is an environment mapping local variable names to
frozensets of string *tags* ("what do we know about this value"); the
join of two environments is the per-variable union, so the analysis is
a may-analysis: a tag survives if it holds on *some* path into the
statement.  Rules supply a transfer function for the right-hand side of
assignments (``value_tags``) and read the fixed-point environments back
through :class:`FlowResult` to judge each statement with flow-sensitive
knowledge of its inputs.

Def-use plumbing (which names a statement binds, which in-place
operations it performs on which name) lives here too because every
mutation-style rule shares it.
"""

from __future__ import annotations

import ast

from repro.lint.semantics.cfg import CFG

#: ``np.ndarray`` method calls that mutate the receiver in place.
INPLACE_NDARRAY_METHODS = frozenset({
    "fill", "sort", "partition", "put", "itemset", "resize", "byteswap",
})

#: container method calls that mutate the receiver in place (STL001).
INPLACE_CONTAINER_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "popleft", "appendleft", "remove", "discard",
    "clear", "sort", "reverse", "move_to_end",
})


def walk_expressions(stmt: ast.stmt):
    """Walk a statement's AST without entering nested function bodies.

    Nested ``def``/``lambda`` bodies run in their own scope (and their
    own CFG/flow analysis); only their decorators and argument defaults
    evaluate in the enclosing scope, so only those are yielded.  Class
    bodies *do* execute in the enclosing scope and are walked normally
    (their methods are pruned like any other nested function).  The
    root node itself is never pruned: passing a ``FunctionDef`` walks
    that function's own body, minus any defs nested inside it.
    """

    def expand(node):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            children = list(node.decorator_list)
            children.extend(node.args.defaults)
            children.extend(d for d in node.args.kw_defaults if d)
            return children
        if isinstance(node, ast.Lambda):
            children = list(node.args.defaults)
            children.extend(d for d in node.args.kw_defaults if d)
            return children
        return list(ast.iter_child_nodes(node))

    yield stmt
    stack = list(ast.iter_child_nodes(stmt))
    while stack:
        node = stack.pop()
        yield node
        stack.extend(expand(node))


def own_expressions(stmt: ast.stmt):
    """Expressions evaluated *at* this statement's CFG node.

    Compound statements own only their header expressions — an ``if``
    owns its test, a ``for`` its target and iterable — because their
    bodies are separate CFG nodes.  Walking the whole subtree of an
    ``ast.If`` from its CFG node would wrongly attribute body effects
    to the branch point (e.g. an invalidation call guarded by the
    condition would look unconditional).  Simple statements own their
    entire subtree, minus nested scopes per :func:`walk_expressions`.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        roots = [stmt.test]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        roots = [stmt.target, stmt.iter]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        roots = []
        for item in stmt.items:
            roots.append(item.context_expr)
            if item.optional_vars is not None:
                roots.append(item.optional_vars)
    elif isinstance(stmt, ast.Try):
        roots = []
    elif isinstance(stmt, ast.ExceptHandler):
        roots = [stmt.type] if stmt.type is not None else []
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef)):
        roots = list(stmt.decorator_list)
        if isinstance(stmt, ast.ClassDef):
            roots.extend(stmt.bases)
            roots.extend(k.value for k in stmt.keywords)
        else:
            roots.extend(stmt.args.defaults)
            roots.extend(d for d in stmt.args.kw_defaults if d)
    elif hasattr(ast, "Match") and isinstance(stmt, ast.Match):
        roots = [stmt.subject]
    else:
        yield from walk_expressions(stmt)
        return
    for root in roots:
        yield from walk_expressions(root)


def bound_names(stmt: ast.stmt):
    """Names (re)bound by a statement: assignments, loop targets, withs.

    Rebinding *kills* dataflow tags — ``x = x.copy()`` makes ``x``
    owned again — so every rule needs this exact set.
    """
    names = set()

    def collect_target(target):
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                names.add(node.id)

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, (ast.Name, ast.Tuple, ast.List)):
                collect_target(target)
    elif isinstance(stmt, ast.AnnAssign):
        if isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
    elif isinstance(stmt, ast.AugAssign):
        if isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        collect_target(stmt.target)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                collect_target(item.optional_vars)
    return names


def assigned_name_values(stmt: ast.stmt):
    """``(name, value_expr)`` pairs for simple-name assignments.

    Tuple unpacking from a single call (``a, b = f()``) maps every
    element name to the call expression, which is the right
    over-approximation for taint-style tags.
    """
    pairs = []
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                pairs.append((target.id, stmt.value))
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        pairs.append((element.id, stmt.value))
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None \
            and isinstance(stmt.target, ast.Name):
        pairs.append((stmt.target.id, stmt.value))
    return pairs


def mutations_in(stmt: ast.stmt,
                 inplace_methods=INPLACE_NDARRAY_METHODS):
    """``(name, node, how)`` for every in-place mutation of a bare name.

    Detected forms: ``x[...] = v`` / ``x[...] op= v`` (subscript store),
    ``x op= v`` (augmented assignment on the name itself),
    ``x.attr = v`` (attribute store), ``x.method(...)`` for mutating
    method names, and ``f(..., out=x)`` (numpy out-parameter).
    """
    found = []

    def root_name(node):
        return node.id if isinstance(node, ast.Name) else None

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Subscript):
                name = root_name(target.value)
                if name:
                    found.append((name, target, "item assignment"))
            elif isinstance(target, ast.Attribute):
                name = root_name(target.value)
                if name:
                    found.append((name, target, "attribute assignment"))
    elif isinstance(stmt, ast.AugAssign):
        target = stmt.target
        if isinstance(target, ast.Name):
            found.append((target.id, target, "augmented assignment"))
        elif isinstance(target, ast.Subscript):
            name = root_name(target.value)
            if name:
                found.append((name, target, "augmented item assignment"))
        elif isinstance(target, ast.Attribute):
            name = root_name(target.value)
            if name:
                found.append((name, target,
                              "augmented attribute assignment"))
    for node in own_expressions(stmt):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in inplace_methods:
            name = root_name(func.value)
            if name:
                found.append((name, node, f"in-place .{func.attr}() call"))
        for keyword in node.keywords:
            if keyword.arg == "out":
                name = root_name(keyword.value)
                if name:
                    found.append((name, node, "out= argument"))
    return found


class FlowResult:
    """Fixed-point environments of one function's dataflow analysis."""

    def __init__(self, cfg: CFG, envs: dict) -> None:
        self.cfg = cfg
        self.envs = envs

    def tags(self, node_id: int, name: str) -> frozenset:
        """Tags of ``name`` on entry to statement ``node_id``."""
        return self.envs.get(node_id, {}).get(name, frozenset())

    def statements(self):
        """``(node_id, stmt, env)`` triples in deterministic order."""
        for node_id in self.cfg.topo_order():
            yield node_id, self.cfg.stmts[node_id], \
                self.envs.get(node_id, {})


def _join(a: dict, b: dict) -> dict:
    merged = dict(a)
    for name, tags in b.items():
        merged[name] = merged.get(name, frozenset()) | tags
    return merged


def analyze(cfg: CFG, init_env: dict, value_tags) -> FlowResult:
    """Run the forward fixpoint.

    Args:
        cfg: the function's statement CFG.
        init_env: environment on entry (typically parameter tags).
        value_tags: ``f(value_expr, env) -> frozenset`` giving the tags
            of an assigned right-hand side under the incoming
            environment.

    Returns:
        The per-statement entry environments.
    """
    if cfg.entry < 0:
        return FlowResult(cfg, {})
    envs = {cfg.entry: dict(init_env)}
    worklist = [cfg.entry]
    while worklist:
        node_id = worklist.pop()
        env = envs.get(node_id, {})
        stmt = cfg.stmts[node_id]
        out_env = dict(env)
        # Kill every rebound name, then gen tags from simple assignments.
        for name in bound_names(stmt):
            out_env.pop(name, None)
        for name, value in assigned_name_values(stmt):
            tags = value_tags(value, env)
            if tags:
                out_env[name] = frozenset(tags)
            else:
                out_env.pop(name, None)
        for succ in sorted(cfg.succ.get(node_id, ())):
            if succ < 0:
                continue
            merged = _join(envs.get(succ, {}), out_env) \
                if succ in envs else out_env
            if succ not in envs or merged != envs[succ]:
                envs[succ] = merged
                worklist.append(succ)
    return FlowResult(cfg, envs)
