"""MUT00x: cache-aliasing and in-place mutation rules.

The TensorCache (PR 5) hands out read-only arrays and relies on two
caller-side disciplines that nothing previously enforced statically:

- a value obtained from a cache lookup is shared with every future hit
  and must never be mutated (MUT001) nor have its write flag re-enabled
  (MUT003 — ``setflags(write=True)`` would defeat the defensive freeze
  and corrupt an entry for all later readers);
- stage functions receive arrays they do not own — mutating a caller's
  array in place aliases state across engines and breaks the bitwise
  differential audit (MUT002).

MUT001/002 are flow-sensitive: rebinding a name to a fresh copy
(``x = x.copy()``) clears its taint, so defensive-copy idioms pass
without suppressions.
"""

from __future__ import annotations

import ast

from repro.lint.semantics.base import (
    SemanticContext,
    SemanticRule,
    register_semantic,
)
from repro.lint.semantics.cfg import build_cfg
from repro.lint.semantics.dataflow import analyze, mutations_in

_CACHE_OWNED = "cache-owned"
_PARAM_ARRAY = "param-array"

#: Parameter-name prefixes that signal an intentional output buffer the
#: callee owns (the numpy ``out=`` convention spelled as a name).
_OWNED_PARAM_PREFIXES = ("out", "dest", "buf", "scratch")


def _receiver_is_cache(func: ast.Attribute) -> bool:
    """Whether ``<recv>.get/put`` looks like a tensor-cache lookup.

    Matches receivers whose terminal name contains ``cache`` —
    ``tensor_cache.get(...)``, ``self.compute_cache.put(...)``,
    ``cache.get(...)`` — which is the repo's (enforced) naming
    convention for cache handles.
    """
    recv = func.value
    terminal = None
    if isinstance(recv, ast.Name):
        terminal = recv.id
    elif isinstance(recv, ast.Attribute):
        terminal = recv.attr
    return terminal is not None and "cache" in terminal.lower()


def _cache_lookup(value: ast.AST) -> bool:
    """Whether an expression is a cache ``get``/``put`` call."""
    return (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Attribute)
        and value.func.attr in ("get", "put")
        and _receiver_is_cache(value.func)
    )


def _annotation_is_ndarray(annotation) -> bool:
    """Whether a parameter annotation names ``np.ndarray`` (incl. in
    ``Optional``/union spellings)."""
    if annotation is None:
        return False
    return "ndarray" in ast.dump(annotation)


def _docstring_allows_inplace(func_node) -> bool:
    doc = (ast.get_docstring(func_node) or "").lower()
    return "in place" in doc or "in-place" in doc


class _FlowMutationRule(SemanticRule):
    """Shared flow machinery for MUT001/MUT002."""

    tag = ""

    def init_env(self, func_node) -> dict:
        """Environment on function entry (parameter tags)."""
        return {}

    def value_tags(self, value, env) -> frozenset:
        """Tags of an assigned right-hand side."""
        return frozenset()

    def message(self, name: str, how: str) -> str:
        """Diagnostic text for one detected mutation."""
        raise NotImplementedError

    def function_exempt(self, func_node) -> bool:
        """Whether a whole function is out of scope for the rule."""
        return False

    def check(self, sctx: SemanticContext):
        """Flag in-place mutation of tagged values in every function."""
        for info in sorted(sctx.record.functions.values(),
                           key=lambda i: i.qualname):
            if self.function_exempt(info.node):
                continue
            cfg = build_cfg(info.node)
            if cfg.entry < 0:
                continue
            flow = analyze(cfg, self.init_env(info.node), self.value_tags)
            for _node_id, stmt, env in flow.statements():
                for name, node, how in mutations_in(stmt):
                    if self.tag in env.get(name, frozenset()):
                        yield self.diag(sctx.ctx, node,
                                        self.message(name, how))


@register_semantic
class CacheValueMutationRule(_FlowMutationRule):
    """Never mutate a value returned by a cache lookup."""

    name = "cache-value-mutation"
    code = "MUT001"
    description = ("values returned by TensorCache/stage-API lookups "
                   "are shared with every future hit and must not be "
                   "mutated; copy first")
    tag = _CACHE_OWNED

    def value_tags(self, value, env):
        """Tag cache get/put results; propagate through tuple unpack."""
        if _cache_lookup(value):
            return frozenset({_CACHE_OWNED})
        return frozenset()

    def message(self, name, how):
        """Explain the aliasing hazard for one mutation site."""
        return (f"{how} mutates '{name}', which aliases a cache entry "
                "returned by a get()/put() lookup; operate on a copy "
                "(np.array(x, copy=True)) instead")


@register_semantic
class ParamMutationRule(_FlowMutationRule):
    """Functions must not mutate array parameters they do not own."""

    name = "param-mutation"
    code = "MUT002"
    description = ("functions must not mutate np.ndarray parameters "
                   "they do not own (no out*/dest*/buf* name, no "
                   "documented in-place contract)")
    tag = _PARAM_ARRAY

    def init_env(self, func_node):
        """Tag every borrowed ndarray-annotated parameter."""
        env = {}
        args = func_node.args
        all_args = list(args.posonlyargs) + list(args.args) \
            + list(args.kwonlyargs)
        for arg in all_args:
            if arg.arg in ("self", "cls"):
                continue
            if any(arg.arg.startswith(prefix)
                   for prefix in _OWNED_PARAM_PREFIXES):
                continue
            if _annotation_is_ndarray(arg.annotation):
                env[arg.arg] = frozenset({_PARAM_ARRAY})
        return env

    def function_exempt(self, func_node):
        """Documented in-place mutators opt out explicitly."""
        return _docstring_allows_inplace(func_node)

    def message(self, name, how):
        """Explain the borrowed-parameter contract for one site."""
        return (f"{how} mutates parameter '{name}', an np.ndarray the "
                "function does not own; copy it, return a new array, "
                "or document an explicit in-place contract")


@register_semantic
class CacheFreezeDefeatRule(SemanticRule):
    """Never re-enable writes on a (possibly cache-frozen) array."""

    name = "cache-freeze-defeat"
    code = "MUT003"
    description = ("setflags(write=True) re-enables writes on arrays "
                   "the TensorCache froze; mutate a copy instead")

    def check(self, sctx: SemanticContext):
        """Flag every ``setflags`` call that sets ``write=True``."""
        for stmt in ast.walk(sctx.record.tree):
            if not isinstance(stmt, ast.Call):
                continue
            func = stmt.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr == "setflags"):
                continue
            enables_write = any(
                kw.arg == "write" and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in stmt.keywords
            ) or (stmt.args and isinstance(stmt.args[0], ast.Constant)
                  and stmt.args[0].value is True)
            if enables_write:
                yield self.diag(
                    sctx.ctx, stmt,
                    "setflags(write=True) would re-enable mutation of "
                    "an array the TensorCache may have frozen; build a "
                    "writable copy instead",
                )
