"""Approximate whole-program call graph over the project index.

Resolution is name-based and deliberately over-approximate, the right
polarity for the rules built on it:

- a bare ``name(...)`` call resolves through the calling module's own
  functions, then its ``from x import name`` aliases;
- a dotted ``mod.func(...)`` call resolves through import aliases to a
  known module's top-level function;
- ``self.method(...)`` resolves inside the caller's own class first
  (including single-level base classes defined in the project);
- any other ``obj.method(...)`` resolves to *every* project method of
  that name (the attribute receiver's type is unknown statically).

Over-approximation makes reachability analyses (STL001) conservative
and caller searches (FPR001) complete; it can only cause a rule to look
harder, never to miss an edge that exists.
"""

from __future__ import annotations

import ast

from repro.lint.semantics.index import ProjectIndex


class CallGraph:
    """Resolved call edges between project functions."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        #: caller qualname -> set of callee qualnames.
        self.edges: dict = {}
        #: callee qualname -> set of caller qualnames.
        self.callers: dict = {}
        #: caller qualname -> set of *terminal* called names
        #: (``foo`` for both ``foo()`` and ``obj.foo()``), resolved
        #: or not -- rules match contract methods by bare name.
        self.called_names: dict = {}
        for qualname, info in sorted(index.functions.items()):
            record = index.modules.get(info.module)
            if record is None:
                continue
            callees = set()
            names = set()
            for call in self._calls_in(info.node):
                terminal = self._terminal_name(call.func)
                if terminal:
                    names.add(terminal)
                callees.update(self._resolve(call, info, record))
            self.edges[qualname] = callees
            self.called_names[qualname] = names
            for callee in callees:
                self.callers.setdefault(callee, set()).add(qualname)

    @staticmethod
    def _calls_in(func_node):
        for node in ast.walk(func_node):
            if isinstance(node, ast.Call):
                yield node

    @staticmethod
    def _terminal_name(func):
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None

    def _resolve(self, call, info, record):
        func = call.func
        index = self.index
        if isinstance(func, ast.Name):
            name = func.id
            # Own-module top-level function.
            own = record.functions.get(name)
            if own is not None and own.cls is None:
                return {own.qualname}
            # ``from repro.x import name`` alias.
            target = record.imports.get(name)
            if target and target in index.functions:
                return {target}
            return set()
        if not isinstance(func, ast.Attribute):
            return set()
        attr = func.attr
        receiver = func.value
        # self.method() / cls.method(): own class, then project bases.
        if isinstance(receiver, ast.Name) and receiver.id in ("self", "cls") \
                and info.cls is not None:
            resolved = self._resolve_method(record, info.cls, attr)
            if resolved:
                return resolved
        # mod.func() through an import alias.
        if isinstance(receiver, ast.Name):
            target = record.imports.get(receiver.id)
            if target:
                qual = f"{target}.{attr}"
                if qual in index.functions:
                    return {qual}
        # ClassName.method() on a project class in scope.
        if isinstance(receiver, ast.Name):
            cinfo = record.classes.get(receiver.id)
            if cinfo is not None and attr in cinfo.methods:
                return {cinfo.methods[attr].qualname}
        # Unknown receiver: every project method of this name.
        return set(self.index.method_index.get(attr, ()))

    def _resolve_method(self, record, cls_name, attr, depth=0):
        cinfo = record.classes.get(cls_name)
        if cinfo is None or depth > 4:
            return set()
        if attr in cinfo.methods:
            return {cinfo.methods[attr].qualname}
        resolved = set()
        for base in cinfo.node.bases:
            base_name = base.id if isinstance(base, ast.Name) else (
                base.attr if isinstance(base, ast.Attribute) else None
            )
            if not base_name:
                continue
            if base_name in record.classes:
                resolved |= self._resolve_method(
                    record, base_name, attr, depth + 1
                )
            else:
                target = record.imports.get(base_name)
                if target and target.rsplit(".", 1)[0] in self.index.modules:
                    base_record = self.index.modules[
                        target.rsplit(".", 1)[0]
                    ]
                    resolved |= self._resolve_method(
                        base_record, target.rsplit(".", 1)[1], attr,
                        depth + 1,
                    )
        return resolved

    def reachable_from(self, roots) -> set:
        """Transitive closure of callees starting from ``roots``."""
        seen = set()
        frontier = list(roots)
        while frontier:
            qualname = frontier.pop()
            if qualname in seen:
                continue
            seen.add(qualname)
            frontier.extend(self.edges.get(qualname, ()))
        return seen

    def callers_of(self, qualname: str) -> set:
        """Direct callers of one function."""
        return set(self.callers.get(qualname, ()))
