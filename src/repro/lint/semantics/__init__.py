"""Whole-program semantic analysis for daoplint.

This subpackage (part of the ``lint`` layer, rank 3 in the package DAG)
lifts daoplint from per-file AST matching to whole-program reasoning: a
project-wide module/symbol index (:mod:`~repro.lint.semantics.index`),
an approximate call graph (:mod:`~repro.lint.semantics.callgraph`),
statement-level CFGs (:mod:`~repro.lint.semantics.cfg`), and a forward
dataflow/taint framework (:mod:`~repro.lint.semantics.dataflow`) that
the flow-sensitive rule families plug into:

- DET1xx (:mod:`~repro.lint.semantics.rules_rng`): RNG provenance and
  escape;
- MUT00x (:mod:`~repro.lint.semantics.rules_mutation`): cache aliasing
  and in-place parameter mutation;
- FPR001 (:mod:`~repro.lint.semantics.rules_fingerprint`): weights-
  fingerprint invalidation on every path;
- STL001 (:mod:`~repro.lint.semantics.rules_state`): no module-level
  mutable state behind the resumable step machine.

See ``docs/static-analysis.md`` for the framework guide and how to
write a new flow-sensitive rule.
"""

from repro.lint.semantics.analyzer import (
    SemanticCache,
    run_semantic_lint,
    semantic_lint_source,
)
from repro.lint.semantics.base import (
    SemanticContext,
    SemanticRule,
    all_semantic_rules,
    get_semantic_rule,
    register_semantic,
)
from repro.lint.semantics.callgraph import CallGraph
from repro.lint.semantics.cfg import CFG, build_cfg
from repro.lint.semantics.dataflow import FlowResult, analyze
from repro.lint.semantics.index import (
    ModuleRecord,
    ProjectIndex,
)
from repro.lint.semantics.rules_fingerprint import (
    FingerprintInvalidationRule,
)
from repro.lint.semantics.rules_mutation import (
    CacheFreezeDefeatRule,
    CacheValueMutationRule,
    ParamMutationRule,
)
from repro.lint.semantics.rules_rng import RngEscapeRule, RngProvenanceRule
from repro.lint.semantics.rules_state import StepStateLeakageRule

__all__ = [
    "SemanticCache",
    "run_semantic_lint",
    "semantic_lint_source",
    "SemanticContext",
    "SemanticRule",
    "all_semantic_rules",
    "get_semantic_rule",
    "register_semantic",
    "CallGraph",
    "CFG",
    "build_cfg",
    "FlowResult",
    "analyze",
    "ModuleRecord",
    "ProjectIndex",
    "FingerprintInvalidationRule",
    "CacheFreezeDefeatRule",
    "CacheValueMutationRule",
    "ParamMutationRule",
    "RngEscapeRule",
    "RngProvenanceRule",
    "StepStateLeakageRule",
]
