"""STL001: no module-level mutable state behind the step machine.

The resumable step machine (PR 4) and the serving/cluster simulators
promise that a sequence can be checkpointed, resumed, and bitwise
replayed.  That promise dies silently the moment any code reachable
from ``start``/``step``/``finish`` writes module-level state: the write
survives across sequences and processes restarts differently, so a
resumed run diverges from a straight-through run.  This rule walks the
approximate call graph from every ``start``/``step``/``finish`` method
(plus ``run`` on ``*Simulator``/``*Scheduler`` classes) and flags, in
any reachable project function:

- mutation of a module-level mutable container of the function's own
  module (``_PENDING.append(...)``, ``TABLE[k] = v``, ...);
- rebinding of any module-level name through ``global``;
- and, at class scope, mutable class-attribute literals on classes
  that define step-machine methods (shared across every instance).

Reads of module constants are deliberately not flagged — lookup tables
are fine; it is *writes* that leak state between sequences.
"""

from __future__ import annotations

import ast

from repro.lint.semantics.base import (
    SemanticContext,
    SemanticRule,
    register_semantic,
)
from repro.lint.semantics.dataflow import (
    INPLACE_CONTAINER_METHODS,
    mutations_in,
    walk_expressions,
)

#: Method names that anchor the step-machine contract.
STEP_METHODS = frozenset({"start", "step", "finish"})

#: Class-name suffixes whose ``run`` drives a step loop.
_DRIVER_SUFFIXES = ("Simulator", "Scheduler", "Engine")


def _entry_points(project):
    """Qualnames of every step-machine entry method in the project."""
    entries = set()
    for qualname, info in project.functions.items():
        if not info.is_method:
            continue
        if info.name in STEP_METHODS:
            entries.add(qualname)
        elif info.name == "run" and info.cls is not None \
                and info.cls.endswith(_DRIVER_SUFFIXES):
            entries.add(qualname)
    return entries


def _local_scope_names(func_node) -> set:
    """Names bound anywhere in the function (locals, params, loops)."""
    names = set()
    args = func_node.args
    for arg in list(args.posonlyargs) + list(args.args) \
            + list(args.kwonlyargs):
        names.add(arg.arg)
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    for node in walk_expressions(func_node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.comprehension,)):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
    return names


@register_semantic
class StepStateLeakageRule(SemanticRule):
    """start/step/finish must keep mutable state on sequence objects."""

    name = "step-state-leakage"
    code = "STL001"
    description = ("code reachable from start/step/finish must not "
                   "write module-level (or shared class-level) mutable "
                   "state; checkpoints/resume require all state on the "
                   "sequence/replica objects")

    def check(self, sctx: SemanticContext):
        """Flag global-state writes in step-reachable functions."""
        project = sctx.project
        reachable = self._reachable(project, sctx.callgraph)
        for info in sorted(sctx.record.functions.values(),
                           key=lambda i: i.qualname):
            if info.qualname not in reachable:
                continue
            yield from self._check_function(sctx, info)
        yield from self._check_class_attrs(sctx)

    def _reachable(self, project, callgraph) -> set:
        cached = project.analysis_cache.get("stl.reachable")
        if cached is None:
            cached = callgraph.reachable_from(_entry_points(project))
            project.analysis_cache["stl.reachable"] = cached
        return cached

    def _check_function(self, sctx, info):
        record = sctx.record
        declared_global = set()
        for node in walk_expressions(info.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        local_names = _local_scope_names(info.node) - declared_global
        mutable_globals = set(record.mutable_globals) - local_names

        cfg = sctx.project.cfg(info.node)
        for _node_id, stmt in sorted(cfg.stmts.items()):
            # ``global X`` rebinding.
            for name in bound_global_names(stmt, declared_global):
                yield self.diag(
                    sctx.ctx, stmt,
                    f"rebinding module-level '{name}' (via 'global') "
                    "from step-machine code leaks state across "
                    "sequences and breaks checkpoint/resume",
                )
            # In-place mutation of a module-level mutable container.
            inplace = INPLACE_CONTAINER_METHODS \
                | frozenset({"fill", "sort", "put", "resize"})
            for name, node, how in mutations_in(stmt, inplace):
                if name in mutable_globals or name in declared_global:
                    yield self.diag(
                        sctx.ctx, node,
                        f"{how} on module-level '{name}' from code "
                        "reachable from start/step/finish; keep "
                        "mutable state on the sequence/replica object",
                    )

    def _check_class_attrs(self, sctx):
        for cinfo in sorted(sctx.record.classes.values(),
                            key=lambda c: c.name):
            has_step_api = any(
                name in STEP_METHODS for name in cinfo.methods
            )
            if not has_step_api:
                continue
            for name, node in sorted(cinfo.mutable_class_attrs.items()):
                yield self.diag(
                    sctx.ctx, node,
                    f"class attribute '{name}' of '{cinfo.name}' is a "
                    "mutable container shared by every instance; "
                    "initialize it per-sequence in __init__ instead",
                )


def bound_global_names(stmt, declared_global):
    """Names in ``declared_global`` that this statement rebinds."""
    if not declared_global:
        return ()
    bound = set()
    targets = []
    if isinstance(stmt, ast.Assign):
        targets = stmt.targets
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    for target in targets:
        for node in ast.walk(target):
            if isinstance(node, ast.Name) and node.id in declared_global:
                bound.add(node.id)
    return sorted(bound)
