"""Semantic rule base class, context, and registry.

Semantic rules see the whole program, not one file: their ``check``
receives a :class:`SemanticContext` carrying the per-file
:class:`~repro.lint.registry.LintContext` (for diagnostics and
suppression anchoring) plus the :class:`~repro.lint.semantics.index.
ProjectIndex` and :class:`~repro.lint.semantics.callgraph.CallGraph`.
They are registered in their own registry so ``repro lint`` can run the
cheap per-file rules alone and add the whole-program pass behind
``--semantic``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lint.registry import LintContext, Rule

#: Bump when rule semantics change: folded into the on-disk semantic
#: cache key so stale cached findings can never be replayed.
SEMANTIC_RULES_VERSION = "1"


@dataclass(frozen=True)
class SemanticContext:
    """Whole-program view handed to a semantic rule for one file."""

    ctx: LintContext
    record: object   # ModuleRecord of this file
    project: object  # ProjectIndex
    callgraph: object  # CallGraph


class SemanticRule(Rule):
    """Base class for whole-program daoplint rules."""

    def check(self, sctx: SemanticContext):
        """Yield diagnostics for one file under whole-program context."""
        raise NotImplementedError


_SEMANTIC_REGISTRY = {}


def register_semantic(cls):
    """Class decorator adding one rule instance to the semantic registry."""
    instance = cls()
    if instance.name in _SEMANTIC_REGISTRY:
        raise ValueError(f"duplicate semantic rule name {instance.name!r}")
    _SEMANTIC_REGISTRY[instance.name] = instance
    return cls


def all_semantic_rules():
    """Every registered semantic rule, ordered by code."""
    return sorted(_SEMANTIC_REGISTRY.values(), key=lambda rule: rule.code)


def get_semantic_rule(name: str) -> SemanticRule:
    """Look up one semantic rule by kebab-case name or code."""
    if name in _SEMANTIC_REGISTRY:
        return _SEMANTIC_REGISTRY[name]
    for rule in _SEMANTIC_REGISTRY.values():
        if rule.code == name:
            return rule
    raise KeyError(f"unknown semantic rule {name!r}")
