"""DET1xx: flow-sensitive RNG-provenance rules.

The per-file DET002 rule catches ``np.random.default_rng()`` with no
seed at the construction site, but it cannot see seedlessness that
flows: a ``PCG64()`` bit generator built without a seed and wrapped in
``np.random.Generator`` two statements later is exactly as
non-reproducible.  DET101 tracks unseeded-RNG provenance through local
assignments (rebinding to a seeded constructor clears the taint, so
only draws actually reached by an unseeded definition are flagged).
DET102 forbids RNG objects escaping into module-level state: a global
generator is process-wide mutable state whose draw order depends on
import order and caller interleaving, which breaks both reproducibility
and the checkpoint/resume story.
"""

from __future__ import annotations

import ast

from repro.lint.registry import dotted_name
from repro.lint.semantics.base import (
    SemanticContext,
    SemanticRule,
    register_semantic,
)
from repro.lint.semantics.cfg import build_cfg
from repro.lint.semantics.dataflow import analyze, own_expressions

#: Bit-generator constructors under ``np.random``.
_BITGEN_NAMES = frozenset({
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

#: Generator/bit-generator draw methods whose output depends on state.
_DRAW_METHODS = frozenset({
    "random", "standard_normal", "normal", "uniform", "integers",
    "choice", "permutation", "permuted", "shuffle", "exponential",
    "poisson", "binomial", "gamma", "beta", "bytes", "random_raw",
})

_UNSEEDED = "unseeded-rng"


def _np_random_member(dotted: str):
    """The member name for ``np.random.X`` / ``numpy.random.X``, else None."""
    parts = dotted.split(".")
    if len(parts) == 3 and parts[0] in ("np", "numpy") \
            and parts[1] == "random":
        return parts[2]
    return None


def _call_seed_args(call: ast.Call) -> bool:
    """Whether a constructor call passes any seed material."""
    return bool(call.args) or any(
        kw.arg in ("seed", "key") or kw.arg is None for kw in call.keywords
    )


def _unseeded_construction(node: ast.AST, env: dict):
    """Classify an expression: returns a reason string if it constructs
    an RNG/bit generator with provably unseeded provenance."""
    if not isinstance(node, ast.Call):
        return None
    member = _np_random_member(dotted_name(node.func))
    if member is None:
        return None
    if member in _BITGEN_NAMES or member == "RandomState":
        if not _call_seed_args(node):
            return f"np.random.{member}() constructed without a seed"
        return None
    if member == "default_rng" and not _call_seed_args(node):
        return "np.random.default_rng() constructed without a seed"
    if member == "Generator":
        if not node.args:
            return None
        arg = node.args[0]
        if isinstance(arg, ast.Name):
            if _UNSEEDED in env.get(arg.id, frozenset()):
                return ("np.random.Generator wrapped around the "
                        f"unseeded bit generator '{arg.id}'")
            return None
        nested = _unseeded_construction(arg, env)
        if nested:
            return ("np.random.Generator wrapped around an inline "
                    "unseeded bit generator")
    return None


@register_semantic
class RngProvenanceRule(SemanticRule):
    """Every RNG must flow from a seeded constructor or a parameter."""

    name = "rng-provenance"
    code = "DET101"
    description = ("np.random.Generator values must flow from a seeded "
                   "constructor or an explicit rng/seed parameter; "
                   "unseeded provenance is tracked through assignments")

    def check(self, sctx: SemanticContext):
        """Flag unseeded constructions and draws reached by them."""
        for info in sorted(sctx.record.functions.values(),
                           key=lambda i: i.qualname):
            yield from self._check_function(sctx, info.node)
        # Module top level: same analysis over the module body
        # (constructions only; DET102 owns the escape angle).
        yield from self._check_function(sctx, sctx.record.tree)

    def _check_function(self, sctx, func_node):
        cfg = build_cfg(func_node)
        if cfg.entry < 0:
            return

        def value_tags(value, env):
            if _unseeded_construction(value, env):
                return frozenset({_UNSEEDED})
            # Propagation through .spawn()/.bit_generator of a tainted
            # rng keeps the taint.
            if isinstance(value, ast.Call) \
                    and isinstance(value.func, ast.Attribute) \
                    and isinstance(value.func.value, ast.Name) \
                    and _UNSEEDED in env.get(value.func.value.id,
                                             frozenset()):
                return frozenset({_UNSEEDED})
            return frozenset()

        flow = analyze(cfg, {}, value_tags)
        reported = set()
        for _node_id, stmt, env in flow.statements():
            for node in own_expressions(stmt):
                if not isinstance(node, ast.Call):
                    continue
                key = (node.lineno, node.col_offset)
                reason = _unseeded_construction(node, env)
                if reason is not None and key not in reported:
                    reported.add(key)
                    yield self.diag(
                        sctx.ctx, node,
                        f"{reason}; thread a seeded np.random.Generator "
                        "down from configuration instead",
                    )
                    continue
                func = node.func
                if isinstance(func, ast.Attribute) \
                        and func.attr in _DRAW_METHODS \
                        and isinstance(func.value, ast.Name) \
                        and _UNSEEDED in env.get(func.value.id,
                                                 frozenset()) \
                        and key not in reported:
                    reported.add(key)
                    yield self.diag(
                        sctx.ctx, node,
                        f"draw '.{func.attr}()' on '{func.value.id}', "
                        "whose provenance includes an unseeded RNG "
                        "constructor on some path",
                    )


def _is_rng_expression(node: ast.AST) -> bool:
    """Whether an expression constructs any np.random generator object."""
    if not isinstance(node, ast.Call):
        return False
    member = _np_random_member(dotted_name(node.func))
    return member in _BITGEN_NAMES or member in (
        "default_rng", "Generator", "RandomState"
    )


@register_semantic
class RngEscapeRule(SemanticRule):
    """RNG objects must not escape into module-global state."""

    name = "rng-escape"
    code = "DET102"
    description = ("RNG objects bound at module level (or rebound via "
                   "'global') are process-wide mutable state; keep "
                   "generators on config/sequence objects")

    def check(self, sctx: SemanticContext):
        """Flag module-level RNG bindings and ``global`` RNG rebinding."""
        for stmt in sctx.record.tree.body:
            value = None
            if isinstance(stmt, ast.Assign):
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                value = stmt.value
            if value is not None and _is_rng_expression(value):
                yield self.diag(
                    sctx.ctx, stmt,
                    "module-level RNG binding: generator state is "
                    "shared process-wide and its draw order depends on "
                    "import/caller interleaving",
                )
        for info in sorted(sctx.record.functions.values(),
                           key=lambda i: i.qualname):
            declared_global = set()
            for node in ast.walk(info.node):
                if isinstance(node, ast.Global):
                    declared_global.update(node.names)
            if not declared_global:
                continue
            for node in ast.walk(info.node):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name) \
                                and target.id in declared_global \
                                and _is_rng_expression(node.value):
                            yield self.diag(
                                sctx.ctx, node,
                                f"'global {target.id}' rebound to an "
                                "RNG inside a function: generators must "
                                "stay on sequence/config objects, not "
                                "escape to module scope",
                            )
