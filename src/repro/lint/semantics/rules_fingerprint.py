"""FPR001: weight mutations must invalidate the weights fingerprint.

``MoETransformer.weights_fingerprint()`` namespaces every TensorCache
key; any in-place mutation of functional weights (quantization, future
expert tiers) that fails to call ``invalidate_weights_fingerprint()``
lets the cache serve tensors computed from the *old* weights — exactly
the silent divergence the differential audit would later have to bisect
at runtime.  This rule proves the discipline statically: every function
that writes weight state must reach an invalidation call on every
normal path to its exit, either directly (as ``quantize_experts``
does), or in every one of its in-project callers after the call site
(which is how helper mutators like ``quantize_expert`` stay legal).

"Weight state" is an assignment/augmented-assignment/subscript store
through an attribute named ``weight``, ``gain``, or ``embedding`` —
exactly the arrays ``weights_fingerprint()`` hashes.  Constructors are
exempt (a fresh model has no stale fingerprint), and explicit ``raise``
statements are treated as abnormal exits rather than
missing-invalidation paths.
"""

from __future__ import annotations

import ast

from repro.lint.semantics.base import (
    SemanticContext,
    SemanticRule,
    register_semantic,
)
from repro.lint.semantics.dataflow import own_expressions, walk_expressions

#: Attribute names whose stores count as weight-state mutation (the
#: arrays hashed by ``MoETransformer.weights_fingerprint``).
WEIGHT_ATTRS = frozenset({"weight", "gain", "embedding"})

#: The invalidation entry point, matched by terminal call name.
INVALIDATE_NAME = "invalidate_weights_fingerprint"

#: Functions that may initialize weights without invalidating.
_EXEMPT_FUNCTIONS = frozenset({"__init__", "__post_init__", "__setstate__"})


def _weight_writes(func_node):
    """AST target nodes in one function that store into a weight attr."""
    writes = []
    for node in walk_expressions(func_node):
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        for target in targets:
            attr = target
            if isinstance(attr, ast.Subscript):
                attr = attr.value
            if isinstance(attr, ast.Attribute) \
                    and attr.attr in WEIGHT_ATTRS:
                writes.append(target)
    return writes


def _stmt_contains(stmt, predicate) -> bool:
    """Predicate over the expressions this CFG node itself evaluates."""
    return any(predicate(node) for node in own_expressions(stmt))


def _is_invalidating_call(node, invalidators, record, method_index) -> bool:
    """Whether an AST node is a call that certainly invalidates."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        if func.id == INVALIDATE_NAME:
            return True
        own = record.functions.get(func.id)
        if own is not None and own.qualname in invalidators:
            return True
        return record.imports.get(func.id) in invalidators
    if isinstance(func, ast.Attribute):
        if func.attr == INVALIDATE_NAME:
            return True
        candidates = method_index.get(func.attr, ())
        return bool(candidates) and all(
            q in invalidators for q in candidates
        )
    return False


def _always_invalidates(cfg, invalidators, record, method_index,
                        start=None) -> bool:
    """Whether every normal path from ``start`` (default: function
    entry) to the exit executes an invalidating call."""
    blocked = set()
    for node_id, stmt in cfg.stmts.items():
        if isinstance(stmt, ast.Raise):
            blocked.add(node_id)
        elif _stmt_contains(
            stmt,
            lambda n: _is_invalidating_call(n, invalidators, record,
                                            method_index),
        ):
            blocked.add(node_id)
    if start is None:
        start = cfg.entry
        if start < 0:
            return False
        if start in blocked:
            return True
    return not cfg.reachable_avoiding(start, blocked)


@register_semantic
class FingerprintInvalidationRule(SemanticRule):
    """Weight writers must reach fingerprint invalidation on every path."""

    name = "fingerprint-invalidation"
    code = "FPR001"
    description = ("functions that mutate weight state (.weight/.gain/"
                   ".embedding stores) must reach invalidate_weights_"
                   "fingerprint() on every path, directly or in every "
                   "caller")

    def check(self, sctx: SemanticContext):
        """Flag weight-writing functions whose invalidation can be skipped."""
        project = sctx.project
        invalidators = self._invalidator_closure(project)
        method_index = project.method_index

        for info in sorted(sctx.record.functions.values(),
                           key=lambda i: i.qualname):
            if info.name in _EXEMPT_FUNCTIONS:
                continue
            writes = _weight_writes(info.node)
            if not writes:
                continue
            record = project.modules[info.module]
            cfg = project.cfg(info.node)
            write_ids = set(map(id, writes))
            unsatisfied = []
            for node_id, stmt in sorted(cfg.stmts.items()):
                if not any(id(n) in write_ids
                           for n in own_expressions(stmt)):
                    continue
                if not _always_invalidates(cfg, invalidators, record,
                                           method_index, start=node_id):
                    unsatisfied.append(stmt)
            if not unsatisfied:
                continue
            if self._callers_cover(info.qualname, sctx, invalidators,
                                   visited=set()):
                continue
            for stmt in unsatisfied:
                yield self.diag(
                    sctx.ctx, stmt,
                    f"'{info.name}' mutates weight state but neither it "
                    "nor all of its callers reach "
                    "invalidate_weights_fingerprint() on every path; "
                    "stale TensorCache entries could be served for the "
                    "mutated model",
                )

    # ---- helpers -------------------------------------------------------------

    def _invalidator_closure(self, project) -> set:
        """Functions that invalidate on every normal path (fixpoint).

        Whole-program fact; memoized on the project's analysis cache so
        the per-file rule runs do not recompute it.
        """
        cached = project.analysis_cache.get("fpr.invalidators")
        if cached is not None:
            return cached
        invalidators: set = set()
        method_index = project.method_index
        changed = True
        while changed:
            changed = False
            for qualname in sorted(project.functions):
                if qualname in invalidators:
                    continue
                info = project.functions[qualname]
                record = project.modules.get(info.module)
                if record is None:
                    continue
                cfg = project.cfg(info.node)
                if cfg.entry < 0:
                    continue
                if _always_invalidates(cfg, invalidators, record,
                                       method_index):
                    invalidators.add(qualname)
                    changed = True
        project.analysis_cache["fpr.invalidators"] = invalidators
        return invalidators

    def _callers_cover(self, qualname, sctx, invalidators,
                       visited) -> bool:
        """Whether every in-project caller invalidates after each call
        to ``qualname`` on every path (or is itself fully covered)."""
        if qualname in visited:
            return False  # cycle: nobody ever invalidates
        visited.add(qualname)
        project = sctx.project
        method_index = project.method_index
        callers = sctx.callgraph.callers_of(qualname)
        if not callers:
            return False
        target_name = qualname.rsplit(".", 1)[-1]

        def is_target_call(node):
            return isinstance(node, ast.Call) and (
                (isinstance(node.func, ast.Name)
                 and node.func.id == target_name)
                or (isinstance(node.func, ast.Attribute)
                    and node.func.attr == target_name)
            )

        for caller in sorted(callers):
            info = project.functions.get(caller)
            record = project.modules.get(info.module) if info else None
            if info is None or record is None:
                return False
            cfg = project.cfg(info.node)
            for node_id, stmt in sorted(cfg.stmts.items()):
                if not _stmt_contains(stmt, is_target_call):
                    continue
                if _stmt_contains(
                    stmt,
                    lambda n: _is_invalidating_call(
                        n, invalidators, record, method_index
                    ),
                ):
                    continue
                if _always_invalidates(cfg, invalidators, record,
                                       method_index, start=node_id):
                    continue
                if not self._callers_cover(caller, sctx, invalidators,
                                           visited):
                    return False
        return True
