"""Whole-program semantic analysis entry points.

``run_semantic_lint()`` is the analogue of ``repro.lint.runner.
run_lint`` for the flow-sensitive rule families: it collects sources,
builds the :class:`ProjectIndex` and :class:`CallGraph` once, runs
every registered semantic rule per file, and folds the findings through
the same suppression machinery per-file rules use, so ``# daoplint:
disable=...`` markers work identically.

An optional on-disk cache skips rule evaluation entirely when *no*
source file changed: semantic findings are whole-program facts, so the
only sound cache granularity is all-or-nothing, keyed on a digest of
every file's contents plus the rule implementation version.  CI wires
this to an actions cache so re-runs of an unchanged tree are free.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import LintContext
from repro.lint.runner import (
    LintReport,
    _display_path,
    _rel_parts,
    iter_source_files,
    package_root,
)
from repro.lint.semantics.base import (
    SEMANTIC_RULES_VERSION,
    SemanticContext,
    all_semantic_rules,
    get_semantic_rule,
)
from repro.lint.semantics.callgraph import CallGraph
from repro.lint.semantics.index import ModuleRecord, ProjectIndex
from repro.lint.suppressions import SuppressionIndex


def _select_semantic_rules(select):
    if not select:
        return all_semantic_rules()
    return [get_semantic_rule(name) for name in select]


def _collect_records(paths):
    """Parse every source file under ``paths`` into module records.

    Returns ``(records, parse_failures)`` where failures are
    ``(display, SyntaxError)`` pairs reported as SYN000 diagnostics.
    """
    records = []
    failures = []
    for path in paths:
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for source_file in iter_source_files(path):
            source = source_file.read_text(encoding="utf-8")
            display = _display_path(source_file)
            rel = _rel_parts(source_file)
            try:
                tree = ast.parse(source)
            except SyntaxError as exc:
                failures.append((display, exc))
                continue
            records.append(ModuleRecord.build(display, rel, source, tree))
    return records, failures


def _check_records(records, failures, select) -> LintReport:
    """Run the selected semantic rules over prepared records."""
    report = LintReport()
    for display, exc in failures:
        report.files += 1
        report.diagnostics.append(Diagnostic(
            path=display, line=exc.lineno or 1, col=exc.offset or 1,
            rule="syntax-error", code="SYN000", severity=Severity.ERROR,
            message=f"cannot parse file: {exc.msg}",
        ))
    project = ProjectIndex.build(records)
    callgraph = CallGraph(project)
    rules = _select_semantic_rules(select)
    for record in records:
        report.files += 1
        suppressions = SuppressionIndex(record.source)
        report.suppression_markers.extend(
            (record.path, marker.line, marker.rules, marker.file_wide)
            for marker in suppressions.markers
        )
        ctx = LintContext(path=record.path, rel=record.rel,
                          tree=record.tree, source=record.source)
        sctx = SemanticContext(ctx=ctx, record=record, project=project,
                               callgraph=callgraph)
        for rule in rules:
            for diagnostic in rule.check(sctx):
                if suppressions.is_suppressed(
                    diagnostic.rule, diagnostic.code, diagnostic.line
                ):
                    report.suppressed.append(diagnostic)
                else:
                    report.diagnostics.append(diagnostic)
    return report.finalize()


def semantic_lint_source(source: str, path: str = "src/repro/module.py",
                         select=None, extra_files=None) -> list:
    """Semantically lint an in-memory snippet (fixture tests).

    ``extra_files`` maps virtual paths to sources forming the rest of
    the one-shot project, so cross-file behavior (call-graph caller
    coverage, reachability) is testable without touching disk.
    """
    files = {path: source}
    files.update(extra_files or {})
    records = []
    failures = []
    for display, text in files.items():
        try:
            tree = ast.parse(text)
        except SyntaxError as exc:
            failures.append((display, exc))
            continue
        records.append(ModuleRecord.build(
            display, _rel_parts(Path(display)), text, tree
        ))
    report = _check_records(records, failures, select)
    return [d for d in report.diagnostics if d.path == path]


class SemanticCache:
    """All-or-nothing on-disk cache of one semantic run's findings."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    def load(self, key: str):
        """Cached raw findings for ``key``, or None on any mismatch."""
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if payload.get("key") != key:
            return None
        try:
            return [
                Diagnostic(
                    path=d["path"], line=int(d["line"]),
                    col=int(d["col"]), rule=d["rule"], code=d["code"],
                    severity=Severity[d["severity"]],
                    message=d["message"],
                )
                for d in payload["findings"]
            ], int(payload["files"])
        except (KeyError, TypeError, ValueError):
            return None

    def store(self, key: str, findings, files: int) -> None:
        """Persist one run's raw (pre-suppression) findings."""
        payload = {
            "version": SEMANTIC_RULES_VERSION,
            "key": key,
            "files": files,
            "findings": [
                {
                    "path": d.path, "line": d.line, "col": d.col,
                    "rule": d.rule, "code": d.code,
                    "severity": d.severity.name, "message": d.message,
                }
                for d in findings
            ],
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(payload, indent=1),
                             encoding="utf-8")


def _cache_key(records, select) -> str:
    project = ProjectIndex.build(records)
    salt = SEMANTIC_RULES_VERSION + "|" + ",".join(
        rule.code for rule in _select_semantic_rules(select)
    )
    return project.global_sha(salt)


def run_semantic_lint(paths=None, select=None,
                      cache_path=None) -> LintReport:
    """Run the whole-program semantic analysis over ``paths``.

    Defaults to the installed ``repro`` package.  With ``cache_path``,
    a prior run over byte-identical sources (same rule selection, same
    rule version) is replayed from disk instead of re-analyzed;
    suppressions are always re-applied from the live sources, which the
    matching content digest guarantees are unchanged.
    """
    records, failures = _collect_records(
        [Path(p) for p in paths] if paths else [package_root()]
    )
    cache = SemanticCache(cache_path) if cache_path else None
    key = _cache_key(records, select) if cache else None
    if cache is not None and not failures:
        cached = cache.load(key)
        if cached is not None:
            findings, files = cached
            return _replay(records, findings, files)
    report = _check_records(records, failures, select)
    if cache is not None and not failures:
        raw = sorted(report.diagnostics + report.suppressed,
                     key=lambda d: d.sort_key)
        cache.store(key, raw, report.files)
    return report


def _replay(records, findings, files: int) -> LintReport:
    """Rebuild a report from cached raw findings + live suppressions."""
    report = LintReport(files=files)
    suppressions = {}
    for record in records:
        index = SuppressionIndex(record.source)
        suppressions[record.path] = index
        report.suppression_markers.extend(
            (record.path, marker.line, marker.rules, marker.file_wide)
            for marker in index.markers
        )
    for diagnostic in findings:
        index = suppressions.get(diagnostic.path)
        if index is not None and index.is_suppressed(
            diagnostic.rule, diagnostic.code, diagnostic.line
        ):
            report.suppressed.append(diagnostic)
        else:
            report.diagnostics.append(diagnostic)
    return report.finalize()
