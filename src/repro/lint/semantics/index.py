"""Project-wide module and symbol index for semantic analysis.

The per-file rules in :mod:`repro.lint.rules` see one AST at a time;
the flow-sensitive rules need to answer questions like "who calls
``quantize_expert``" or "is this name a module-level mutable binding".
This module builds that whole-program view: one :class:`ModuleRecord`
per source file (imports, classes, functions, module-level bindings)
collected into a :class:`ProjectIndex` with a flat function table and a
method-name index that the approximate call graph resolves against.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field

#: Constructor names whose module-level result is mutable shared state
#: (the containers STL001 cares about).
MUTABLE_CONSTRUCTORS = frozenset({
    "list", "dict", "set", "bytearray", "deque", "defaultdict",
    "OrderedDict", "Counter",
})


def source_digest(source: str) -> str:
    """Stable hex digest of one file's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def module_name_from_rel(rel: tuple) -> str:
    """Dotted module name for path parts relative to the package root.

    ``("core", "daop.py")`` -> ``"repro.core.daop"``;
    ``("core", "__init__.py")`` -> ``"repro.core"``; a bare
    ``("sample.py",)`` (fixture outside the package) -> ``"sample"``.
    """
    parts = [p[:-3] if p.endswith(".py") else p for p in rel]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if len(rel) == 1 and not rel[0].endswith(".py"):
        parts = [rel[0]]
    dotted = ".".join(p for p in parts if p)
    if not dotted:
        return "repro"
    # Files reached through a repro package root are absolute repro
    # modules; loose fixtures keep their bare stem.
    return "repro." + dotted if len(rel) > 1 or rel[0].endswith(".py") \
        else dotted


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str
    module: str
    name: str
    node: ast.AST
    cls: str | None = None

    @property
    def is_method(self) -> bool:
        """Whether the function is defined inside a class body."""
        return self.cls is not None


@dataclass
class ClassInfo:
    """One class definition: its methods and class-level bindings."""

    name: str
    module: str
    node: ast.ClassDef
    methods: dict = field(default_factory=dict)
    #: class-body names bound to mutable literals/constructors -> node.
    mutable_class_attrs: dict = field(default_factory=dict)


def _is_mutable_binding(value: ast.AST) -> bool:
    """Whether an assigned expression builds a mutable container."""
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        return name in MUTABLE_CONSTRUCTORS
    return False


@dataclass
class ModuleRecord:
    """Everything the semantic layer knows about one source file."""

    path: str
    rel: tuple
    module: str
    source: str
    tree: ast.Module
    sha: str
    #: local alias -> dotted import target ("np" -> "numpy").
    imports: dict = field(default_factory=dict)
    #: local qualname ("func", "Class.method") -> FunctionInfo.
    functions: dict = field(default_factory=dict)
    #: class name -> ClassInfo.
    classes: dict = field(default_factory=dict)
    #: module-level name -> assignment node, mutable containers only.
    mutable_globals: dict = field(default_factory=dict)
    #: every module-level bound name (incl. immutable constants).
    global_names: set = field(default_factory=set)

    @classmethod
    def build(cls, path: str, rel: tuple, source: str,
              tree: ast.Module) -> "ModuleRecord":
        """Parse one file's top-level structure into a record."""
        record = cls(path=path, rel=rel,
                     module=module_name_from_rel(rel), source=source,
                     tree=tree, sha=source_digest(source))
        record._collect_imports()
        record._collect_module_bindings()
        record._collect_functions()
        return record

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = f"{node.module}.{alias.name}"

    def _collect_module_bindings(self) -> None:
        for stmt in self.tree.body:
            targets = []
            if isinstance(stmt, ast.Assign):
                targets = [t for t in stmt.targets
                           if isinstance(t, ast.Name)]
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None \
                    and isinstance(stmt.target, ast.Name):
                targets = [stmt.target]
                value = stmt.value
            else:
                continue
            for target in targets:
                self.global_names.add(target.id)
                if _is_mutable_binding(value):
                    self.mutable_globals[target.id] = stmt

    def _collect_functions(self) -> None:
        for stmt in self.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    qualname=f"{self.module}.{stmt.name}",
                    module=self.module, name=stmt.name, node=stmt,
                )
                self.functions[stmt.name] = info
            elif isinstance(stmt, ast.ClassDef):
                cinfo = ClassInfo(name=stmt.name, module=self.module,
                                  node=stmt)
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        local = f"{stmt.name}.{item.name}"
                        info = FunctionInfo(
                            qualname=f"{self.module}.{local}",
                            module=self.module, name=item.name,
                            node=item, cls=stmt.name,
                        )
                        cinfo.methods[item.name] = info
                        self.functions[local] = info
                    elif isinstance(item, ast.Assign):
                        for target in item.targets:
                            if isinstance(target, ast.Name) \
                                    and _is_mutable_binding(item.value):
                                cinfo.mutable_class_attrs[target.id] = item
                self.classes[stmt.name] = cinfo


class ProjectIndex:
    """Whole-program symbol index over a set of module records."""

    def __init__(self) -> None:
        #: dotted module name -> ModuleRecord.
        self.modules: dict = {}
        #: fully qualified function name -> FunctionInfo.
        self.functions: dict = {}
        #: bare method name -> set of fully qualified method names.
        self.method_index: dict = {}
        #: memoized per-function CFGs and cross-rule analysis facts,
        #: keyed by the rule that computed them (rules run once per
        #: file; whole-program facts must not be rebuilt 181 times).
        self._cfgs: dict = {}
        self.analysis_cache: dict = {}

    def cfg(self, func_node):
        """Memoized statement CFG of one function definition."""
        from repro.lint.semantics.cfg import build_cfg

        key = id(func_node)
        cached = self._cfgs.get(key)
        if cached is None:
            cached = self._cfgs[key] = build_cfg(func_node)
        return cached

    @classmethod
    def build(cls, records) -> "ProjectIndex":
        """Assemble the index from prepared module records."""
        index = cls()
        for record in records:
            index.modules[record.module] = record
            for info in record.functions.values():
                index.functions[info.qualname] = info
                if info.is_method:
                    index.method_index.setdefault(
                        info.name, set()
                    ).add(info.qualname)
        return index

    def record_for(self, qualname: str):
        """The ModuleRecord that defines a fully qualified function."""
        info = self.functions.get(qualname)
        return self.modules.get(info.module) if info else None

    def global_sha(self, salt: str = "") -> str:
        """Digest over every file's content hash (cache key).

        Semantic findings are whole-program facts, so the only sound
        cache granularity is "nothing changed anywhere"; ``salt`` folds
        the rule implementation version into the key.
        """
        digest = hashlib.sha256(salt.encode("utf-8"))
        for module in sorted(self.modules):
            record = self.modules[module]
            digest.update(module.encode("utf-8"))
            digest.update(record.sha.encode("utf-8"))
        return digest.hexdigest()
