"""Engine-contract rules: the "identical substrate" guarantee as lint.

The paper's speedups are only meaningful if every baseline runs on the
same cost model, timeline semantics, and trace instrumentation as DAOP
(engine.py's stated contract).  Three things would silently break that:

1. a baseline borrowing DAOP's sequence-aware migration planner
   (Algorithm 1, SS IV-B) -- the data-aware allocation *is* the
   contribution under test, so baselines must not call it;
2. a baseline overriding the shared substrate primitives (``generate``,
   ``_expert_gpu``, ``_upload_expert``, ...) instead of the policy hooks,
   which would let it charge different costs for the same op;
3. any engine-layer code reaching into ``_``-private attributes of the
   Timeline / CostModel / ExpertPlacement objects, bypassing the public
   accounting API;
4. engine policy code smuggling state through the sequence state's
   ``extra`` scratch dict instead of the typed hook API
   (:class:`~repro.core.engine.BlockPlan` returns and ``ctx.policy``) --
   the side channel the step-machine refactor removed;
5. engine or audit code invoking expert math directly
   (``SwiGLUExpert.__call__`` / ``block.experts[i](...)``) instead of the
   cache-aware ``MoEBlock`` stage API -- a direct call bypasses the
   content-addressed compute cache and the shared ``ffn_norm`` hoist, so
   its output would not participate in the cache-parity guarantee;
6. an engine implementing only half of the checkpoint policy-hook pair
   (``_policy_state_dict`` without ``_restore_policy`` or vice versa) --
   a one-sided implementation checkpoints state it can never reinstall
   (or restores state it never saved), breaking the resume-parity
   guarantee silently until the first mid-decode restore.

Note the rules deliberately do NOT forbid baselines from *uploading*
experts during decode: on-demand caching and prefetching baselines
(MoE-OnDemand, Mixtral-Offloading, Pre-gated MoE, ...) upload as their
published behavior.  What is forbidden statically is using DAOP's swap
planner; "migration stays in prefill when ``decode_realloc_interval`` is
None" is a *runtime* contract checked by
:mod:`repro.lint.contracts`.
"""

from __future__ import annotations

import ast

from repro.lint.registry import LintContext, Rule, dotted_name, register

#: Modules that implement DAOP's data-aware migration machinery.
_MIGRATION_MODULES = ("repro.core.allocation", "repro.memory.migration")

#: Names from those modules that baselines must never touch.
_MIGRATION_NAMES = frozenset({
    "plan_block_swaps", "SwapPlan", "MigrationEngine", "MigrationRecord",
})

#: BaseEngine substrate primitives baselines may use but never redefine.
#: ``_decode_blocks`` and ``_prefill_blocks`` are deliberately absent:
#: they are the *policy* hooks of the block-work protocol (engines
#: describe routed expert work there), while the drivers that execute
#: the described work — solo (``_decode_step``, ``_prefill``) and
#: gathered (``step_batch``, ``step_prefill_batch``) — are substrate.
_SUBSTRATE_METHODS = frozenset({
    "generate", "start", "step", "step_batch", "step_prefill_batch",
    "finish", "checkpoint_sequence", "restore_sequence",
    "_attention", "_gate", "_expert_gpu", "_expert_cpu",
    "_upload_expert", "_drop_expert", "_lm_head", "_lm_head_batch",
    "_execute_experts_at_location", "_record_activation_counters",
    "_prefill_standard", "_prefill_blocks_standard",
    "_decode_step", "_decode_step_standard",
    "_decode_blocks_standard", "_routed_block_work",
    "_drive_blocks", "_execute_block_work_solo",
    "_execute_block_work_gathered", "_group_barrier", "_gathered_rows",
    "_note_gathered_kernel", "_gathered_expert_gpu",
    "_gathered_expert_cpu", "_device_spec",
})

#: The checkpoint policy-hook pair every engine implements together.
_CHECKPOINT_HOOK_PAIR = ("_policy_state_dict", "_restore_policy")


@register
class BaselineMigrationRule(Rule):
    """Baselines may not use DAOP's migration planner (SS IV-B)."""

    name = "baseline-migration"
    code = "ENG001"
    description = ("baseline engines may not import or call DAOP's "
                   "sequence-aware migration primitives (Algorithm 1)")

    def check(self, ctx: LintContext):
        """Flag migration-module imports and planner names in baselines."""
        if not ctx.in_subpath("core", "baselines"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.startswith(_MIGRATION_MODULES):
                        yield self.diag(
                            ctx, node,
                            f"baseline imports migration module "
                            f"'{alias.name}'; Algorithm 1 swaps are "
                            "DAOP-only",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.module.startswith(_MIGRATION_MODULES):
                    yield self.diag(
                        ctx, node,
                        f"baseline imports from '{node.module}'; "
                        "Algorithm 1 swaps are DAOP-only",
                    )
            elif isinstance(node, ast.Name) and \
                    isinstance(node.ctx, ast.Load) and \
                    node.id in _MIGRATION_NAMES:
                yield self.diag(
                    ctx, node,
                    f"baseline references migration primitive "
                    f"'{node.id}'; Algorithm 1 swaps are DAOP-only",
                )


@register
class SubstrateOverrideRule(Rule):
    """Baselines customize policy hooks, never substrate primitives."""

    name = "substrate-override"
    code = "ENG002"
    description = ("baseline engines may not override BaseEngine "
                   "substrate primitives (generate/_expert_*/...); only "
                   "the policy hooks")

    def check(self, ctx: LintContext):
        """Flag substrate-primitive method definitions in baselines."""
        if not ctx.in_subpath("core", "baselines"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)) \
                        and stmt.name in _SUBSTRATE_METHODS:
                    yield self.diag(
                        ctx, stmt,
                        f"baseline '{node.name}' overrides substrate "
                        f"primitive '{stmt.name}'; engines must be "
                        "compared on an identical substrate",
                    )


@register
class CheckpointHookPairRule(Rule):
    """Checkpoint policy hooks come in pairs: save with restore."""

    name = "checkpoint-hook-pair"
    code = "ENG006"
    description = ("an engine class defining one of _policy_state_dict/"
                   "_restore_policy must define both; a one-sided "
                   "implementation breaks resume parity silently")

    def check(self, ctx: LintContext):
        """Flag engine classes defining exactly one hook of the pair.

        ``BaseEngine`` itself defines both (as ``NotImplementedError``
        stubs), so the pairing requirement applies uniformly to every
        class in ``repro/core`` — a subclass inheriting both stubs is
        fine, one overriding a single side is not.
        """
        if not ctx.in_subpath("core"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            defined = {
                stmt.name for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef))
                and stmt.name in _CHECKPOINT_HOOK_PAIR
            }
            if len(defined) == 1:
                present = defined.pop()
                missing = next(h for h in _CHECKPOINT_HOOK_PAIR
                               if h != present)
                yield self.diag(
                    ctx, node,
                    f"engine '{node.name}' defines '{present}' without "
                    f"'{missing}'; the checkpoint policy hooks must be "
                    "implemented as a pair",
                )


@register
class PrivateSubstrateAccessRule(Rule):
    """Engine code must use public Timeline/CostModel/placement APIs."""

    name = "private-substrate"
    code = "ENG003"
    description = ("core engine code may not access _-private attributes "
                   "of other objects (Timeline/CostModel/placement "
                   "internals)")

    def check(self, ctx: LintContext):
        """Flag ``obj._attr`` where ``obj`` is not ``self``/``cls``."""
        if not ctx.in_subpath("core"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            attr = node.attr
            if not attr.startswith("_") or attr.startswith("__"):
                continue
            base = node.value
            if isinstance(base, ast.Name) and base.id in ("self", "cls"):
                continue
            owner = dotted_name(base) or "<expr>"
            yield self.diag(
                ctx, node,
                f"access to private attribute '{owner}.{attr}'; use the "
                "substrate's public API",
            )


@register
class SequenceExtraAccessRule(Rule):
    """Policy code communicates via BlockPlan/ctx.policy, not ctx.extra."""

    name = "sequence-extra-access"
    code = "ENG004"
    description = ("engines outside repro/core/engine.py may not read or "
                   "write the sequence state's 'extra' scratch dict; "
                   "return a BlockPlan or keep state on ctx.policy")

    def check(self, ctx: LintContext):
        """Flag any ``<obj>.extra`` attribute access in engine code."""
        if not ctx.in_subpath("core") or ctx.rel == ("core", "engine.py"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute) or node.attr != "extra":
                continue
            owner = dotted_name(node.value) or "<expr>"
            yield self.diag(
                ctx, node,
                f"access to sequence scratch dict '{owner}.extra'; pass "
                "residency through BlockPlan returns and keep per-"
                "sequence policy state on ctx.policy",
            )


@register
class ExpertStageApiRule(Rule):
    """Engine/audit code runs expert math via the MoEBlock stage API."""

    name = "expert-stage-api"
    code = "ENG005"
    description = ("engine and audit code must invoke expert math through "
                   "the cache-aware MoEBlock stage API "
                   "(expert_forward/gate_logits/...), never by calling "
                   "SwiGLUExpert or block.experts[i] directly")

    def check(self, ctx: LintContext):
        """Flag direct ``<obj>.experts[i](...)`` calls and SwiGLUExpert
        imports in ``repro/core`` and ``repro/audit``.

        Subscript *reads* of an ``experts`` attribute stay legal — routing
        decisions and trace events expose ``experts`` arrays that engine
        code inspects constantly; only *calling* the subscripted value
        executes expert math outside the stage API.
        """
        if not (ctx.in_subpath("core") or ctx.in_subpath("audit")):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Subscript) \
                        and isinstance(func.value, ast.Attribute) \
                        and func.value.attr == "experts":
                    owner = dotted_name(func.value.value) or "<expr>"
                    yield self.diag(
                        ctx, node,
                        f"direct expert call '{owner}.experts[...](...)' "
                        "bypasses the compute cache; use "
                        "MoEBlock.expert_forward",
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.startswith("repro.model.experts"):
                        yield self.diag(
                            ctx, node,
                            f"imports expert module '{alias.name}'; expert "
                            "math must go through the MoEBlock stage API",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.module.startswith("repro.model.experts") or (
                    node.module.startswith("repro.model")
                    and any(a.name == "SwiGLUExpert" for a in node.names)
                ):
                    yield self.diag(
                        ctx, node,
                        f"imports SwiGLUExpert from '{node.module}'; expert "
                        "math must go through the MoEBlock stage API",
                    )
