"""Determinism rules: the simulation must be reproducible end-to-end.

The paper's results are single-run numbers on a deterministic simulator;
any hidden entropy source (stdlib ``random`` module globals, the legacy
``np.random.*`` singleton, wall-clock reads) would make the reproduction
unverifiable.  All randomness must flow through an explicitly seeded
``np.random.Generator`` threaded down from configuration, and all *time*
must come from the simulated :class:`repro.hardware.timeline.Timeline`.
"""

from __future__ import annotations

import ast

from repro.lint.registry import LintContext, Rule, dotted_name, register

#: ``np.random`` attributes that construct explicit generators/seeds and
#: are therefore allowed (the call-site seed check is separate).
_NP_RANDOM_ALLOWED = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937", "RandomState",
})

#: Wall-clock call suffixes forbidden in simulator value paths.
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "datetime.now", "datetime.utcnow",
    "datetime.today", "date.today",
})

_WALL_CLOCK_FROM_TIME = frozenset({
    "time", "time_ns", "monotonic", "perf_counter", "process_time",
})


def _matches_wall_clock(dotted: str) -> bool:
    if dotted in _WALL_CLOCK:
        return True
    return any(dotted.endswith("." + suffix) for suffix in _WALL_CLOCK)


@register
class StdlibRandomRule(Rule):
    """Forbid the stdlib ``random`` module (hidden global RNG state)."""

    name = "stdlib-random"
    code = "DET001"
    description = ("stdlib random module is process-global state; use a "
                   "seeded np.random.Generator instead")

    def check(self, ctx: LintContext):
        """Flag ``import random`` / ``from random import`` / ``random.*``."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or \
                            alias.name.startswith("random."):
                        yield self.diag(
                            ctx, node,
                            "import of the stdlib 'random' module; route "
                            "randomness through a seeded "
                            "np.random.Generator",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.diag(
                        ctx, node,
                        "import from the stdlib 'random' module; route "
                        "randomness through a seeded np.random.Generator",
                    )


@register
class UnseededNumpyRule(Rule):
    """Forbid legacy/unseeded ``np.random`` entry points."""

    name = "unseeded-numpy"
    code = "DET002"
    description = ("legacy np.random.* singleton calls and "
                   "np.random.default_rng() without a seed break "
                   "reproducibility")

    def check(self, ctx: LintContext):
        """Flag legacy ``np.random.X`` uses and seedless ``default_rng``."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                dotted = dotted_name(node)
                parts = dotted.split(".")
                if len(parts) == 3 and parts[0] in ("np", "numpy") \
                        and parts[1] == "random" \
                        and parts[2] not in _NP_RANDOM_ALLOWED:
                    yield self.diag(
                        ctx, node,
                        f"legacy global-state RNG '{dotted}'; use a "
                        "seeded np.random.Generator passed down from "
                        "config",
                    )
            elif isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted in ("np.random.default_rng",
                              "numpy.random.default_rng") \
                        and not node.args and not node.keywords:
                    yield self.diag(
                        ctx, node,
                        "np.random.default_rng() without a seed draws OS "
                        "entropy; pass an explicit seed",
                    )


@register
class WallClockRule(Rule):
    """Forbid wall-clock reads; simulated time comes from Timeline."""

    name = "wall-clock"
    code = "DET003"
    description = ("time.time/datetime.now in value paths; simulated "
                   "time must come from the Timeline")

    def check(self, ctx: LintContext):
        """Flag wall-clock calls and ``from time import time`` forms."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted and _matches_wall_clock(dotted):
                    yield self.diag(
                        ctx, node,
                        f"wall-clock read '{dotted}()'; simulated time "
                        "must come from the Timeline",
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    bad = [alias.name for alias in node.names
                           if alias.name in _WALL_CLOCK_FROM_TIME]
                    if bad:
                        yield self.diag(
                            ctx, node,
                            "importing wall-clock reads "
                            f"{bad} from 'time'; simulated time must "
                            "come from the Timeline",
                        )
