"""daoplint rule families; importing this package registers every rule.

Rule families (see ``docs/linting.md`` for the paper justification):

- :mod:`repro.lint.rules.determinism` (DET00x) -- no hidden entropy or
  wall-clock reads; the simulation is deterministic end-to-end.
- :mod:`repro.lint.rules.layering` (LAY001/LAY002) -- the package
  import DAG and its registration completeness.
- :mod:`repro.lint.rules.engine_contract` (ENG00x) -- the "identical
  substrate" guarantee for DAOP vs. the baselines.
- :mod:`repro.lint.rules.api_hygiene` (API00x) -- docstrings, __all__
  consistency, and units on hardware-model dataclass fields.
- :mod:`repro.lint.rules.timeline` (TL00x) -- the timeline op record is
  append-only and owned by repro.hardware.
- :mod:`repro.lint.rules.docs_sync` (DOC001/NUM001) -- registered
  engines stay documented in the architecture taxonomy, and golden
  tests compare floats through ``pytest.approx``.
"""

from repro.lint.rules.api_hygiene import (
    DunderAllRule,
    ExportDriftRule,
    FieldUnitsRule,
    ModuleDocstringRule,
)
from repro.lint.rules.determinism import (
    StdlibRandomRule,
    UnseededNumpyRule,
    WallClockRule,
)
from repro.lint.rules.docs_sync import (
    EngineTaxonomyDocRule,
    FloatEqualityRule,
)
from repro.lint.rules.engine_contract import (
    BaselineMigrationRule,
    ExpertStageApiRule,
    PrivateSubstrateAccessRule,
    SequenceExtraAccessRule,
    SubstrateOverrideRule,
)
from repro.lint.rules.layering import (
    LAYERS,
    ImportLayeringRule,
    PackageRegistrationRule,
)
from repro.lint.rules.timeline import TimelineOpsMutationRule

__all__ = [
    "DunderAllRule",
    "ExportDriftRule",
    "FieldUnitsRule",
    "ModuleDocstringRule",
    "EngineTaxonomyDocRule",
    "FloatEqualityRule",
    "StdlibRandomRule",
    "UnseededNumpyRule",
    "WallClockRule",
    "BaselineMigrationRule",
    "ExpertStageApiRule",
    "PrivateSubstrateAccessRule",
    "SequenceExtraAccessRule",
    "SubstrateOverrideRule",
    "LAYERS",
    "ImportLayeringRule",
    "PackageRegistrationRule",
    "TimelineOpsMutationRule",
]
