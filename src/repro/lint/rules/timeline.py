"""Timeline-integrity rules: the op record is append-only, by one owner.

Every paper number in this repo — makespans, utilizations, energy
integrals, critical paths — is derived from ``Timeline.ops``.  The
timeline resolves each op's start/end *at submission* against per-lane
FIFO state, so the list is only meaningful if it is built exclusively
through ``Timeline.add()``: code elsewhere appending, reordering, or
rewriting ``ops`` entries would silently desynchronize the schedule from
the per-resource clocks and corrupt every downstream metric.  Reading
``.ops`` (iteration, indexing, rendering) is of course fine and common.

This is one of the ROADMAP's candidate rules: forbid ``Timeline.ops``
mutation outside :mod:`repro.hardware`, statically.
"""

from __future__ import annotations

import ast

from repro.lint.registry import LintContext, Rule, dotted_name, register

#: list methods that mutate in place.
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "pop", "remove", "clear", "sort",
    "reverse",
})


def _is_ops_attribute(node) -> bool:
    """Whether ``node`` is an ``<expr>.ops`` attribute access."""
    return isinstance(node, ast.Attribute) and node.attr == "ops"


def _owner(node) -> str:
    """Readable owner expression for diagnostics."""
    return dotted_name(node) or "<expr>"


@register
class TimelineOpsMutationRule(Rule):
    """``Timeline.ops`` may only be mutated inside ``repro.hardware``."""

    name = "timeline-ops-mutation"
    code = "TL001"
    description = ("Timeline.ops is append-only via Timeline.add(); no "
                   "mutation of a .ops attribute outside repro.hardware")

    def check(self, ctx: LintContext):
        """Flag writes to any ``.ops`` attribute outside the owner package.

        The check is name-based (any attribute called ``ops``), matching
        the bluntness of the other static rules: the only ``ops``
        attribute in the library is the timeline's op record, and a
        false positive on a future unrelated ``ops`` is a naming smell
        worth flagging anyway.
        """
        if ctx.in_subpath("hardware"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _MUTATING_METHODS \
                    and _is_ops_attribute(node.func.value):
                yield self.diag(
                    ctx, node,
                    f"'{_owner(node.func.value.value)}.ops"
                    f".{node.func.attr}(...)' mutates the timeline op "
                    "record; ops are appended only by Timeline.add() in "
                    "repro.hardware",
                )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    yield from self._check_write(ctx, target)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                yield from self._check_write(ctx, node.target)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    yield from self._check_write(ctx, target)

    def _check_write(self, ctx: LintContext, target):
        """Diagnostics for one assignment/deletion target."""
        # x.ops = ... / del x.ops
        if _is_ops_attribute(target):
            yield self.diag(
                ctx, target,
                f"assignment to '{_owner(target.value)}.ops' replaces "
                "the timeline op record; build schedules through "
                "Timeline.add() in repro.hardware",
            )
        # x.ops[i] = ... / del x.ops[i] / x.ops[i:j] = ...
        elif isinstance(target, ast.Subscript) \
                and _is_ops_attribute(target.value):
            yield self.diag(
                ctx, target,
                f"item write on '{_owner(target.value.value)}.ops' "
                "mutates the timeline op record; ops are append-only "
                "via Timeline.add() in repro.hardware",
            )
        # (a, b.ops) = ... style tuple targets
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from self._check_write(ctx, element)
