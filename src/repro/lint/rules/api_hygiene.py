"""API-hygiene rules: docstrings, ``__all__`` consistency, unit docs.

A reproduction is only auditable if its public surface is documented:
every module says what paper section it implements, every package facade
(``__init__.py``) exports exactly what it imports, and every physical
quantity in the hardware model states its unit so cost-model numbers can
be checked against the paper's tables.
"""

from __future__ import annotations

import ast
import re

from repro.lint.registry import LintContext, Rule, register

#: Dataclass field names that denote a physical quantity and therefore
#: must document a unit.
_UNIT_FIELD = re.compile(
    r"(?:_s|_ms|_w|_kw|_j|_kj|_bytes|_flops)$"
    r"|bytes|bandwidth|latency|capacity|flops|power|duration"
    r"|energy|overhead"
)

#: Accepted unit spellings inside a docstring.
_UNIT_TOKEN = re.compile(
    r"FLOP/s|GB/s|bytes|byte\b|seconds|second\b|watts|watt\b"
    r"|joules|joule\b|kilojoules?|\bms\b|\bHz\b|/s\b"
)


def _is_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _top_level_bindings(body):
    """Names bound at module top level (descending into If/Try blocks)."""
    bound = set()
    for stmt in body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                if alias.name != "*":
                    bound.add(alias.asname or alias.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for node in ast.walk(target):
                    if isinstance(node, ast.Name):
                        bound.add(node.id)
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name):
                bound.add(stmt.target.id)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            bound.add(stmt.name)
        elif isinstance(stmt, ast.If):
            bound |= _top_level_bindings(stmt.body)
            bound |= _top_level_bindings(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            bound |= _top_level_bindings(stmt.body)
            bound |= _top_level_bindings(stmt.orelse)
            bound |= _top_level_bindings(stmt.finalbody)
            for handler in stmt.handlers:
                bound |= _top_level_bindings(handler.body)
    return bound


def _find_dunder_all(tree: ast.Module):
    """The ``__all__`` assignment node and value, or (None, None)."""
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    return stmt, stmt.value
    return None, None


@register
class ModuleDocstringRule(Rule):
    """Every module states its purpose (and paper section) up front."""

    name = "module-docstring"
    code = "API001"
    description = "every module must open with a docstring"

    def check(self, ctx: LintContext):
        """Flag modules whose first statement is not a docstring."""
        if not (ast.get_docstring(ctx.tree) or "").strip():
            yield self.diag(ctx, (1, 1), "module has no docstring")


@register
class DunderAllRule(Rule):
    """Package facades declare a well-formed, resolvable ``__all__``."""

    name = "dunder-all"
    code = "API002"
    description = ("__init__.py must define a literal __all__ whose "
                   "entries are importable and unique")

    def check(self, ctx: LintContext):
        """Flag missing/non-literal/dangling/duplicate __all__ entries."""
        if not ctx.is_dunder_init:
            return
        node, value = _find_dunder_all(ctx.tree)
        if node is None:
            yield self.diag(ctx, (1, 1),
                            "__init__.py does not define __all__")
            return
        if not isinstance(value, (ast.List, ast.Tuple)):
            yield self.diag(ctx, node,
                            "__all__ must be a literal list/tuple")
            return
        bound = _top_level_bindings(ctx.tree.body)
        seen = set()
        for element in value.elts:
            if not (isinstance(element, ast.Constant)
                    and isinstance(element.value, str)):
                yield self.diag(ctx, element,
                                "__all__ entries must be string literals")
                continue
            name = element.value
            if name in seen:
                yield self.diag(ctx, element,
                                f"duplicate __all__ entry '{name}'")
            seen.add(name)
            if name not in bound:
                yield self.diag(
                    ctx, element,
                    f"__all__ entry '{name}' is not defined or imported "
                    "in this module",
                )


@register
class ExportDriftRule(Rule):
    """Own-package re-exports in ``__init__.py`` must appear in __all__."""

    name = "export-drift"
    code = "API003"
    description = ("public names imported from the package's own "
                   "submodules must be listed in __all__")

    def check(self, ctx: LintContext):
        """Flag own-submodule imports missing from ``__all__``."""
        if not ctx.is_dunder_init:
            return
        _, value = _find_dunder_all(ctx.tree)
        if not isinstance(value, (ast.List, ast.Tuple)):
            return  # API002 already reports the structural problem.
        exported = {
            element.value for element in value.elts
            if isinstance(element, ast.Constant)
            and isinstance(element.value, str)
        }
        own_module = "repro"
        if len(ctx.rel) > 1:
            own_module += "." + ".".join(ctx.rel[:-1])
        for stmt in ctx.tree.body:
            if not isinstance(stmt, ast.ImportFrom) or not stmt.module:
                continue
            if not (stmt.module == own_module
                    or stmt.module.startswith(own_module + ".")):
                continue
            for alias in stmt.names:
                name = alias.asname or alias.name
                if name.startswith("_") or name == "*":
                    continue
                if name not in exported:
                    yield self.diag(
                        ctx, stmt,
                        f"'{name}' is re-exported from {stmt.module} but "
                        "missing from __all__",
                    )


@register
class FieldUnitsRule(Rule):
    """Hardware-model dataclass fields document their physical units."""

    name = "field-units"
    code = "API004"
    description = ("hardware dataclass fields holding physical "
                   "quantities must state their unit in a docstring")

    def check(self, ctx: LintContext):
        """Flag unit-bearing fields whose docstrings name no unit."""
        if not ctx.in_subpath("hardware"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or not _is_dataclass(node):
                continue
            class_doc = ast.get_docstring(node) or ""
            body = node.body
            for i, stmt in enumerate(body):
                if not (isinstance(stmt, ast.AnnAssign)
                        and isinstance(stmt.target, ast.Name)):
                    continue
                field = stmt.target.id
                if field.startswith("_") or not _UNIT_FIELD.search(field):
                    continue
                if self._documented(field, class_doc, body, i):
                    continue
                yield self.diag(
                    ctx, stmt,
                    f"dataclass field '{node.name}.{field}' holds a "
                    "physical quantity but its docstring names no unit "
                    "(seconds/bytes/watts/joules/FLOP/s/...)",
                )

    @staticmethod
    def _documented(field, class_doc, body, index):
        """Unit mentioned in the class docstring entry or attr docstring."""
        at = class_doc.find(field)
        if at >= 0 and _UNIT_TOKEN.search(class_doc[at:at + 220]):
            return True
        if index + 1 < len(body):
            nxt = body[index + 1]
            if isinstance(nxt, ast.Expr) \
                    and isinstance(nxt.value, ast.Constant) \
                    and isinstance(nxt.value.value, str) \
                    and _UNIT_TOKEN.search(nxt.value.value):
                return True
        return False
