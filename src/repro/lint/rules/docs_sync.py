"""Docs-sync rules: registered engines documented, golden tests tolerant.

Two drift failure modes this family closes:

- DOC001: an engine gets registered in ``repro.core`` (``ENGINE_NAMES``
  / ``build_engine``) without a row in the engine-taxonomy table of
  ``docs/architecture.md``, so the comparison docs silently rot.
- NUM001: a golden-regression test compares floats with bare ``==`` /
  ``!=``; simulated times are sums of many float64 durations, so golden
  pins must use ``pytest.approx`` (a reordered-but-equivalent schedule
  would otherwise fail on the last ulp).
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.lint.registry import LintContext, Rule, register

#: Test files whose comparisons pin golden floating-point baselines.
GOLDEN_TEST_FILES = ("test_golden_regression.py",)


def _architecture_doc() -> str | None:
    """Text of ``docs/architecture.md``, or None outside a repo checkout.

    The doc lives next to the source tree, not inside the installed
    package, so a site-packages install (or a virtual ``lint_source``
    path) simply skips the check.
    """
    package = Path(__file__).resolve().parents[2]
    for root in (package.parent.parent, package.parent):
        doc = root / "docs" / "architecture.md"
        if doc.is_file():
            return doc.read_text(encoding="utf-8")
    return None


def taxonomy_engine_names(markdown: str) -> set:
    """First-column cells of every markdown table row in the doc."""
    names = set()
    for line in markdown.splitlines():
        stripped = line.strip()
        if not stripped.startswith("|"):
            continue
        cells = [cell.strip() for cell in stripped.strip("|").split("|")]
        if cells and cells[0] and not set(cells[0]) <= {"-", ":"}:
            names.add(cells[0].strip("`"))
    return names


def _registered_engine_literals(tree: ast.Module):
    """(name, node) for every engine-name string the registry declares.

    Collects the ``ENGINE_NAMES`` tuple elements plus every string
    compared against ``name`` inside ``build_engine`` so a branch added
    without updating the tuple is still caught.
    """
    out = []
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "ENGINE_NAMES"
            for t in node.targets
        ) and isinstance(node.value, (ast.Tuple, ast.List)):
            out.extend(
                (elt.value, elt) for elt in node.value.elts
                if isinstance(elt, ast.Constant)
                and isinstance(elt.value, str)
            )
        if isinstance(node, ast.FunctionDef) \
                and node.name == "build_engine":
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Compare):
                    continue
                operands = [sub.left] + list(sub.comparators)
                if not any(isinstance(o, ast.Name) and o.id == "name"
                           for o in operands):
                    continue
                out.extend(
                    (o.value, o) for o in operands
                    if isinstance(o, ast.Constant)
                    and isinstance(o.value, str)
                )
    return out


@register
class EngineTaxonomyDocRule(Rule):
    """Every registered engine needs a row in the architecture taxonomy."""

    name = "engine-taxonomy-doc"
    code = "DOC001"
    description = ("every engine registered in repro.core (ENGINE_NAMES/"
                   "build_engine) must have a row in the "
                   "docs/architecture.md taxonomy table")

    def check(self, ctx: LintContext):
        """Flag registered engine names absent from the taxonomy table."""
        if ctx.rel != ("core", "__init__.py"):
            return
        literals = _registered_engine_literals(ctx.tree)
        if not literals:
            return
        doc = _architecture_doc()
        if doc is None:
            return
        documented = taxonomy_engine_names(doc)
        seen = set()
        for engine, node in literals:
            if engine in documented or engine in seen:
                continue
            seen.add(engine)
            yield self.diag(
                ctx, node,
                f"engine {engine!r} is registered but has no row in the "
                "docs/architecture.md engine-taxonomy table",
            )


def _is_float_literal(node) -> bool:
    """Whether the AST node is a float constant (unary minus included)."""
    if isinstance(node, ast.UnaryOp) \
            and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


@register
class FloatEqualityRule(Rule):
    """Golden baselines must compare floats through a tolerance."""

    name = "float-equality"
    code = "NUM001"
    description = ("golden-regression tests must not compare float "
                   "literals with bare ==/!=; use pytest.approx")

    def check(self, ctx: LintContext):
        """Flag exact ==/!= comparisons against float literals."""
        if not ctx.rel or ctx.rel[-1] not in GOLDEN_TEST_FILES:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq))
                       for op in node.ops):
                continue
            operands = [node.left] + list(node.comparators)
            if any(_is_float_literal(o) for o in operands):
                yield self.diag(
                    ctx, node,
                    "bare ==/!= against a float literal in a golden "
                    "test; wrap the expectation in pytest.approx",
                )
