"""Import-layering rule: keep the package dependency graph a DAG.

The substrate layers (``model``/``hardware``/``memory``/``trace``/
``workloads``) must stay importable without the engines, the engines
(``core``) without the evaluation stack, and everything without the CLI.
This is what lets every engine be compared on an identical substrate: a
lower layer can never grow a hidden dependency on engine policy code.

Layer ranks (a package may import strictly lower ranks, plus itself)::

    0  model
    1  events, hardware, workloads
    2  memory, scenarios, trace
    3  core, lint
    4  sched
    5  analysis, audit, eval, metrics, serving
    6  cluster, perf
    7  cli

``events`` (the typed simulation event bus) sits at rank 1 with the
substrate: every emitting layer above it (engines, scheduler, the
simulators) must be able to import it, while the bus itself depends on
nothing — subscribers receive plain-data events.

``scenarios`` (the scenario library) sits with the substrate at rank
2: it materializes workloads from ``model``'s vocabulary and
``workloads``' generators, while the serving tiers *above* it consume
its ``RequestSpec`` lists and re-export its arrival generators — the
``ScenarioRunner`` drives ``ServingSimulator``/``ClusterSimulator``
purely by duck typing (``run_requests``), so the scenario layer never
imports an engine.  ``sched`` sits between the engines and the
evaluation stack: the
continuous-batching scheduler drives the engine step machine directly
(rank 3) and is itself consumed by ``serving``.  ``cluster`` sits in
the serving tier but one rank above ``serving``: the fleet simulator
builds on the single-engine serving vocabulary (it extends
``ServingReport``'s request records), while ``serving`` must stay
importable without any fleet machinery.  ``perf`` (the forward-compute
cache + its cold/warm benchmark harness) also ranks 6: its benchmark
drives the differential audit (rank 5), while the model consumes the
cache purely by duck typing — ``repro.model`` never imports ``perf``.
``repro/__init__.py`` is the public facade and is exempt.  LAY001
skips packages missing from ``LAYERS`` rather than guessing a rank —
but that would silently exempt any new subpackage from the DAG, so
LAY002 closes the escape hatch: every package under ``repro/`` must be
registered here.  (``lint/semantics`` is not a new top-level package;
it rides on ``lint`` at rank 3.)
"""

from __future__ import annotations

import ast

from repro.lint.registry import LintContext, Rule, register

LAYERS = {
    "model": 0,
    "events": 1,
    "hardware": 1,
    "workloads": 1,
    "memory": 2,
    "scenarios": 2,
    "trace": 2,
    "core": 3,
    "lint": 3,
    "sched": 4,
    "analysis": 5,
    "audit": 5,
    "eval": 5,
    "metrics": 5,
    "serving": 5,
    "cluster": 6,
    "perf": 6,
    "cli": 7,
}


def _dep_package(module: str):
    """Top-level repro subpackage of a dotted import target, or None."""
    parts = module.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return None
    return parts[1]


@register
class ImportLayeringRule(Rule):
    """Enforce the package DAG (e.g. repro.model never imports repro.core)."""

    name = "import-layering"
    code = "LAY001"
    description = ("package imports must follow the layer DAG "
                   "model/hardware/memory/trace -> core -> sched -> "
                   "serving/eval/analysis/audit/metrics -> cluster -> cli")

    def check(self, ctx: LintContext):
        """Flag imports of a same-or-higher-layer repro package."""
        own = ctx.package
        if own == "__init__" or own not in LAYERS:
            return
        own_rank = LAYERS[own]
        for node in ast.walk(ctx.tree):
            targets = []
            if isinstance(node, ast.Import):
                targets = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                targets = [node.module]
            for target in targets:
                dep = _dep_package(target)
                if dep is None or dep == own or dep not in LAYERS:
                    continue
                if LAYERS[dep] >= own_rank:
                    yield self.diag(
                        ctx, node,
                        f"layering violation: repro.{own} (layer "
                        f"{own_rank}) may not import repro.{dep} (layer "
                        f"{LAYERS[dep]})",
                    )


@register
class PackageRegistrationRule(Rule):
    """Every subpackage under repro/ must be registered in LAYERS."""

    name = "package-registration"
    code = "LAY002"
    description = ("every package under src/repro/ must have a layer "
                   "rank in LAYERS; unregistered packages silently "
                   "escape the import DAG")

    def check(self, ctx: LintContext):
        """Flag files in subpackages whose top package lacks a rank.

        Only files nested under a subpackage count (``len(rel) > 1``):
        modules sitting directly in the package root (``cli.py``,
        ``__init__.py``) and virtual single-segment fixture paths have
        no package to register.
        """
        if len(ctx.rel) < 2:
            return
        package = ctx.rel[0]
        if package in LAYERS:
            return
        yield self.diag(
            ctx, (1, 1),
            f"package 'repro.{package}' is not registered in LAYERS "
            "(src/repro/lint/rules/layering.py); assign it a layer "
            "rank so LAY001 can enforce the import DAG",
        )
