"""Per-line and per-file suppression markers for daoplint.

Syntax (inside a Python comment)::

    x = foo()  # daoplint: disable=rule-name
    y = bar()  # daoplint: disable=rule-name,OTHER-CODE
    # daoplint: disable-file=rule-name

``disable=`` suppresses matching diagnostics on that source line only;
``disable-file=`` suppresses the rule everywhere in the file.  A rule can
be referenced by its kebab-case name (``stdlib-random``) or its code
(``DET001``); the special name ``all`` matches every rule.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_MARKER = re.compile(
    r"#\s*daoplint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\- ]+)"
)


@dataclass(frozen=True)
class SuppressionMarker:
    """One ``# daoplint: disable[-file]=...`` marker found in a file."""

    line: int
    rules: tuple
    file_wide: bool


class SuppressionIndex:
    """Parsed suppression markers of one source file."""

    def __init__(self, source: str) -> None:
        self.markers = []
        self._line_rules = {}
        self._file_rules = set()
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _MARKER.search(text)
            if not match:
                continue
            kind, raw = match.groups()
            rules = tuple(
                token.strip() for token in raw.split(",") if token.strip()
            )
            file_wide = kind == "disable-file"
            self.markers.append(
                SuppressionMarker(line=lineno, rules=rules,
                                  file_wide=file_wide)
            )
            if file_wide:
                self._file_rules.update(rules)
            else:
                self._line_rules.setdefault(lineno, set()).update(rules)

    def is_suppressed(self, rule: str, code: str, line: int) -> bool:
        """Whether diagnostics of ``rule``/``code`` at ``line`` are muted."""
        for pool in (self._file_rules, self._line_rules.get(line, ())):
            if "all" in pool or rule in pool or code in pool:
                return True
        return False
