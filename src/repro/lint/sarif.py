"""SARIF 2.1.0 serialization of daoplint reports.

GitHub code scanning ingests SARIF; emitting it from ``repro lint
--sarif`` lets every rule family (per-file and semantic) surface as
inline annotations on pull requests instead of a failing CI log line.
Only the small subset of SARIF that code scanning actually renders is
produced: one run, one driver, one rule descriptor per registered rule,
one result per diagnostic.
"""

from __future__ import annotations

import json

from repro.lint.diagnostics import Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")


def _level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def report_to_sarif(report, rules) -> dict:
    """Build the SARIF document for one lint report.

    Args:
        report: a :class:`repro.lint.runner.LintReport`.
        rules: the rule instances that ran (their codes become SARIF
            rule ids; unknown codes in the report are synthesized).

    Returns:
        A JSON-serializable SARIF 2.1.0 document.
    """
    descriptors = {}
    for rule in rules:
        descriptors[rule.code] = {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.description or rule.name},
            "defaultConfiguration": {"level": _level(rule.severity)},
        }
    results = []
    for diagnostic in report.diagnostics:
        if diagnostic.code not in descriptors:
            descriptors[diagnostic.code] = {
                "id": diagnostic.code,
                "name": diagnostic.rule,
                "shortDescription": {"text": diagnostic.rule},
                "defaultConfiguration": {
                    "level": _level(diagnostic.severity)
                },
            }
        results.append({
            "ruleId": diagnostic.code,
            "level": _level(diagnostic.severity),
            "message": {"text": f"[{diagnostic.rule}] "
                                f"{diagnostic.message}"},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": diagnostic.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": diagnostic.line,
                        "startColumn": max(1, diagnostic.col),
                    },
                },
            }],
        })
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "daoplint",
                    "informationUri": "docs/static-analysis.md",
                    "rules": [descriptors[code]
                              for code in sorted(descriptors)],
                },
            },
            "results": results,
        }],
    }


def write_sarif(path, report, rules) -> None:
    """Serialize ``report`` to ``path`` as SARIF 2.1.0."""
    document = report_to_sarif(report, rules)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=False)
        handle.write("\n")
