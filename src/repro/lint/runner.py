"""File discovery, rule execution, and the daoplint entry point.

``run_lint()`` lints the whole installed ``repro`` package;
``lint_paths()`` lints explicit files/directories (the CLI's positional
arguments); ``lint_source()`` lints an in-memory snippet against a
virtual path, which is how the rule unit tests exercise fixtures.
"""

from __future__ import annotations

import argparse
import ast
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

import repro.lint.rules  # noqa: F401  (importing registers every rule)
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import LintContext, all_rules, get_rule
from repro.lint.suppressions import SuppressionIndex


@dataclass
class LintReport:
    """Outcome of one lint run."""

    diagnostics: list = field(default_factory=list)
    suppressed: list = field(default_factory=list)
    suppression_markers: list = field(default_factory=list)
    files: int = 0

    @property
    def errors(self) -> list:
        """Diagnostics at ERROR severity."""
        return [d for d in self.diagnostics
                if d.severity is Severity.ERROR]

    @property
    def exit_code(self) -> int:
        """Process exit code: non-zero iff any diagnostic survived."""
        return 1 if self.diagnostics else 0

    def merge(self, other: "LintReport") -> None:
        """Fold another report's findings into this one."""
        self.diagnostics.extend(other.diagnostics)
        self.suppressed.extend(other.suppressed)
        self.suppression_markers.extend(other.suppression_markers)
        self.files += other.files

    def finalize(self) -> "LintReport":
        """Sort diagnostics into stable path/position order."""
        self.diagnostics.sort(key=lambda d: d.sort_key)
        return self


def package_root() -> Path:
    """Directory of the installed ``repro`` package (lint scope root)."""
    return Path(__file__).resolve().parents[1]


def _display_path(path: Path) -> str:
    try:
        return str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def _rel_parts(path: Path) -> tuple:
    """Path parts relative to the ``repro`` package root.

    Files outside the package (e.g. test fixtures) fall back to their
    bare filename, so package-scoped rules simply skip them.
    """
    resolved = path.resolve()
    try:
        return resolved.relative_to(package_root()).parts
    except ValueError:
        parts = resolved.parts
        if "repro" in parts:
            rel = parts[len(parts) - parts[::-1].index("repro"):]
            if rel:
                return rel
        return (resolved.name,)


def _split_select(select):
    """Partition ``--select`` names into (syntactic, semantic) rules.

    A name may resolve in either registry; unknown names raise KeyError
    like they always did.  Imported lazily to avoid a module cycle
    (the semantic analyzer reuses this module's report/discovery
    helpers).
    """
    from repro.lint.semantics.base import get_semantic_rule

    if not select:
        return None, None
    syntactic, semantic = [], []
    for name in select:
        try:
            get_rule(name)
            syntactic.append(name)
            continue
        except KeyError:
            pass
        try:
            get_semantic_rule(name)
            semantic.append(name)
        except KeyError:
            raise KeyError(f"unknown rule {name!r}")
    return syntactic, semantic


def _select_rules(select):
    if not select:
        return all_rules()
    return [get_rule(name) for name in select]


def lint_source(source: str, path: str = "src/repro/module.py",
                select=None) -> list:
    """Lint an in-memory snippet; returns surviving diagnostics.

    ``path`` is virtual: its components after the last ``repro`` segment
    decide which package-scoped rules apply, so tests can probe e.g. the
    baseline rules with ``src/repro/core/baselines/sample.py``.
    """
    report = _lint_one(source, display=path,
                       rel=_rel_parts(Path(path)), select=select)
    return report.finalize().diagnostics


def _lint_one(source: str, display: str, rel: tuple,
              select=None) -> LintReport:
    report = LintReport(files=1)
    suppressions = SuppressionIndex(source)
    report.suppression_markers.extend(
        (display, marker.line, marker.rules, marker.file_wide)
        for marker in suppressions.markers
    )
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        report.diagnostics.append(Diagnostic(
            path=display, line=exc.lineno or 1, col=exc.offset or 1,
            rule="syntax-error", code="SYN000", severity=Severity.ERROR,
            message=f"cannot parse file: {exc.msg}",
        ))
        return report
    ctx = LintContext(path=display, rel=rel, tree=tree, source=source)
    for rule in _select_rules(select):
        for diagnostic in rule.check(ctx):
            if suppressions.is_suppressed(diagnostic.rule, diagnostic.code,
                                          diagnostic.line):
                report.suppressed.append(diagnostic)
            else:
                report.diagnostics.append(diagnostic)
    return report


def iter_source_files(root: Path):
    """All ``.py`` files under ``root`` (or ``root`` itself), sorted."""
    if root.is_file():
        return [root]
    return sorted(p for p in root.rglob("*.py") if p.is_file())


def lint_paths(paths, select=None) -> LintReport:
    """Lint explicit files and/or directories."""
    report = LintReport()
    for path in paths:
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for source_file in iter_source_files(path):
            source = source_file.read_text(encoding="utf-8")
            report.merge(_lint_one(
                source, display=_display_path(source_file),
                rel=_rel_parts(source_file), select=select,
            ))
    return report.finalize()


def run_lint(root=None, select=None) -> LintReport:
    """Lint the whole ``repro`` package (the default CLI behavior)."""
    return lint_paths([root or package_root()], select=select)


def _stale_markers(report):
    """Suppression markers that muted nothing in this run.

    A marker is *stale* when no suppressed diagnostic matched it: for a
    line marker, nothing was muted on its line of its file; for a
    file-wide marker, nothing was muted by its rules anywhere in the
    file.  Stale markers are how dead suppressions hide — the audit
    flag makes them visible so they can be deleted.
    """
    suppressed_by_file = {}
    for diagnostic in report.suppressed:
        suppressed_by_file.setdefault(diagnostic.path, []).append(
            diagnostic
        )
    stale = []
    for path, line, rules, file_wide in report.suppression_markers:
        hits = suppressed_by_file.get(path, [])
        rule_pool = set(rules)
        if file_wide:
            matched = any(
                "all" in rule_pool or d.rule in rule_pool
                or d.code in rule_pool
                for d in hits
            )
        else:
            matched = any(
                d.line == line and (
                    "all" in rule_pool or d.rule in rule_pool
                    or d.code in rule_pool
                )
                for d in hits
            )
        if not matched:
            stale.append((path, line, rules, file_wide))
    return stale


def _print_suppressions(report) -> None:
    # The syntactic and semantic passes each collect the same file's
    # markers; dedupe before printing.
    markers = sorted(set(report.suppression_markers))
    stale = set(
        (path, line) for path, line, _rules, _fw in _stale_markers(report)
    )
    if not markers:
        print("daoplint: no suppression markers found")
        return
    for path, line, rules, file_wide in markers:
        kind = "disable-file" if file_wide else "disable"
        flag = "  STALE (suppresses nothing)" \
            if (path, line) in stale else ""
        print(f"{path}:{line}: {kind}={','.join(rules)}{flag}")
    print(f"daoplint: {len(markers)} suppression "
          f"marker(s), {len(stale)} stale")


def main(argv=None) -> int:
    """``repro lint`` / ``python -m repro.lint`` entry point."""
    parser = argparse.ArgumentParser(
        prog="daoplint",
        description="AST-based invariant checker for the DAOP "
                    "reproduction (see docs/linting.md and "
                    "docs/static-analysis.md)",
    )
    parser.add_argument("paths", nargs="*",
                        help="files/directories to lint (default: the "
                             "installed repro package)")
    parser.add_argument("--select", nargs="+", metavar="RULE",
                        help="run only these rules (names or codes)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    parser.add_argument("--semantic", action="store_true",
                        help="also run the whole-program semantic "
                             "analyses (DET1xx/MUT/FPR/STL; see "
                             "docs/static-analysis.md)")
    parser.add_argument("--sarif", metavar="PATH",
                        help="write the combined report as SARIF 2.1.0 "
                             "for GitHub code scanning")
    parser.add_argument("--semantic-cache", metavar="PATH",
                        help="reuse/store semantic findings keyed on a "
                             "digest of every source file")
    parser.add_argument("--max-seconds", type=float, metavar="S",
                        help="fail (exit 3) if the semantic analysis "
                             "exceeds this wall-clock budget")
    parser.add_argument("--list-suppressions", action="store_true",
                        help="audit suppression markers (flagging "
                             "stale ones) instead of printing "
                             "diagnostics")
    args = parser.parse_args(argv)

    from repro.lint.semantics.base import all_semantic_rules

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name:<22} {rule.description}")
        for rule in all_semantic_rules():
            print(f"{rule.code}  {rule.name:<22} [semantic] "
                  f"{rule.description}")
        return 0

    # Wall-clock reads below are legitimate: they meter the analyzer
    # itself (the --max-seconds CI budget), not simulated time.
    semantic_elapsed = None
    try:
        syntactic_select, semantic_select = _split_select(args.select)
        run_semantic = args.semantic or bool(semantic_select) \
            or args.list_suppressions
        # A --select naming only semantic rules should not also run
        # every syntactic rule (and vice versa).
        skip_syntactic = bool(args.select) and not syntactic_select
        if skip_syntactic:
            report = LintReport()
        elif args.paths:
            report = lint_paths(args.paths, select=syntactic_select)
        else:
            report = run_lint(select=syntactic_select)
        if run_semantic and not (bool(args.select)
                                 and not semantic_select):
            from repro.lint.semantics.analyzer import run_semantic_lint

            t0 = time.perf_counter()  # daoplint: disable=wall-clock
            semantic_report = run_semantic_lint(
                paths=args.paths or None, select=semantic_select,
                cache_path=args.semantic_cache,
            )
            semantic_elapsed = \
                time.perf_counter() - t0  # daoplint: disable=wall-clock
            # The file sets overlap; keep the per-file count.
            files = max(report.files, semantic_report.files)
            report.merge(semantic_report)
            report.files = files
            report.finalize()
    except (KeyError, FileNotFoundError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"daoplint: error: {message}", file=sys.stderr)
        return 2

    if args.sarif:
        from repro.lint.sarif import write_sarif

        rules = list(all_rules()) + list(all_semantic_rules())
        write_sarif(args.sarif, report, rules)

    if args.list_suppressions:
        _print_suppressions(report)
        return 0

    for diagnostic in report.diagnostics:
        print(diagnostic.format())
    if report.diagnostics:
        print(f"daoplint: {len(report.diagnostics)} problem(s) across "
              f"{report.files} file(s)")
    else:
        print(f"daoplint: {report.files} file(s) clean")
    if semantic_elapsed is not None:
        print(f"daoplint: semantic analysis took "
              f"{semantic_elapsed:.2f}s")
        if args.max_seconds is not None \
                and semantic_elapsed > args.max_seconds:
            print(f"daoplint: semantic analysis exceeded the "
                  f"{args.max_seconds:.0f}s budget", file=sys.stderr)
            return 3
    return report.exit_code
