"""File discovery, rule execution, and the daoplint entry point.

``run_lint()`` lints the whole installed ``repro`` package;
``lint_paths()`` lints explicit files/directories (the CLI's positional
arguments); ``lint_source()`` lints an in-memory snippet against a
virtual path, which is how the rule unit tests exercise fixtures.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass, field
from pathlib import Path

import repro.lint.rules  # noqa: F401  (importing registers every rule)
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import LintContext, all_rules, get_rule
from repro.lint.suppressions import SuppressionIndex


@dataclass
class LintReport:
    """Outcome of one lint run."""

    diagnostics: list = field(default_factory=list)
    suppressed: list = field(default_factory=list)
    suppression_markers: list = field(default_factory=list)
    files: int = 0

    @property
    def errors(self) -> list:
        """Diagnostics at ERROR severity."""
        return [d for d in self.diagnostics
                if d.severity is Severity.ERROR]

    @property
    def exit_code(self) -> int:
        """Process exit code: non-zero iff any diagnostic survived."""
        return 1 if self.diagnostics else 0

    def merge(self, other: "LintReport") -> None:
        """Fold another report's findings into this one."""
        self.diagnostics.extend(other.diagnostics)
        self.suppressed.extend(other.suppressed)
        self.suppression_markers.extend(other.suppression_markers)
        self.files += other.files

    def finalize(self) -> "LintReport":
        """Sort diagnostics into stable path/position order."""
        self.diagnostics.sort(key=lambda d: d.sort_key)
        return self


def package_root() -> Path:
    """Directory of the installed ``repro`` package (lint scope root)."""
    return Path(__file__).resolve().parents[1]


def _display_path(path: Path) -> str:
    try:
        return str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def _rel_parts(path: Path) -> tuple:
    """Path parts relative to the ``repro`` package root.

    Files outside the package (e.g. test fixtures) fall back to their
    bare filename, so package-scoped rules simply skip them.
    """
    resolved = path.resolve()
    try:
        return resolved.relative_to(package_root()).parts
    except ValueError:
        parts = resolved.parts
        if "repro" in parts:
            rel = parts[len(parts) - parts[::-1].index("repro"):]
            if rel:
                return rel
        return (resolved.name,)


def _select_rules(select):
    if not select:
        return all_rules()
    return [get_rule(name) for name in select]


def lint_source(source: str, path: str = "src/repro/module.py",
                select=None) -> list:
    """Lint an in-memory snippet; returns surviving diagnostics.

    ``path`` is virtual: its components after the last ``repro`` segment
    decide which package-scoped rules apply, so tests can probe e.g. the
    baseline rules with ``src/repro/core/baselines/sample.py``.
    """
    report = _lint_one(source, display=path,
                       rel=_rel_parts(Path(path)), select=select)
    return report.finalize().diagnostics


def _lint_one(source: str, display: str, rel: tuple,
              select=None) -> LintReport:
    report = LintReport(files=1)
    suppressions = SuppressionIndex(source)
    report.suppression_markers.extend(
        (display, marker.line, marker.rules, marker.file_wide)
        for marker in suppressions.markers
    )
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        report.diagnostics.append(Diagnostic(
            path=display, line=exc.lineno or 1, col=exc.offset or 1,
            rule="syntax-error", code="SYN000", severity=Severity.ERROR,
            message=f"cannot parse file: {exc.msg}",
        ))
        return report
    ctx = LintContext(path=display, rel=rel, tree=tree, source=source)
    for rule in _select_rules(select):
        for diagnostic in rule.check(ctx):
            if suppressions.is_suppressed(diagnostic.rule, diagnostic.code,
                                          diagnostic.line):
                report.suppressed.append(diagnostic)
            else:
                report.diagnostics.append(diagnostic)
    return report


def iter_source_files(root: Path):
    """All ``.py`` files under ``root`` (or ``root`` itself), sorted."""
    if root.is_file():
        return [root]
    return sorted(p for p in root.rglob("*.py") if p.is_file())


def lint_paths(paths, select=None) -> LintReport:
    """Lint explicit files and/or directories."""
    report = LintReport()
    for path in paths:
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for source_file in iter_source_files(path):
            source = source_file.read_text(encoding="utf-8")
            report.merge(_lint_one(
                source, display=_display_path(source_file),
                rel=_rel_parts(source_file), select=select,
            ))
    return report.finalize()


def run_lint(root=None, select=None) -> LintReport:
    """Lint the whole ``repro`` package (the default CLI behavior)."""
    return lint_paths([root or package_root()], select=select)


def main(argv=None) -> int:
    """``repro lint`` / ``python -m repro.lint`` entry point."""
    parser = argparse.ArgumentParser(
        prog="daoplint",
        description="AST-based invariant checker for the DAOP "
                    "reproduction (see docs/linting.md)",
    )
    parser.add_argument("paths", nargs="*",
                        help="files/directories to lint (default: the "
                             "installed repro package)")
    parser.add_argument("--select", nargs="+", metavar="RULE",
                        help="run only these rules (names or codes)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name:<22} {rule.description}")
        return 0

    try:
        if args.paths:
            report = lint_paths(args.paths, select=args.select)
        else:
            report = run_lint(select=args.select)
    except (KeyError, FileNotFoundError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"daoplint: error: {message}", file=sys.stderr)
        return 2
    for diagnostic in report.diagnostics:
        print(diagnostic.format())
    if report.diagnostics:
        print(f"daoplint: {len(report.diagnostics)} problem(s) across "
              f"{report.files} file(s)")
    else:
        print(f"daoplint: {report.files} file(s) clean")
    return report.exit_code
