"""Diagnostic records emitted by the daoplint static analyzer.

A diagnostic pins one rule violation to a file, line, and column so the
output is directly clickable (``path:line:col``) and suppressible with a
per-line ``# daoplint: disable=RULE`` marker.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.IntEnum):
    """How serious a diagnostic is; sortable (``ERROR`` ranks highest)."""

    WARNING = 1
    ERROR = 2


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule violation at a file/line/column."""

    path: str
    line: int
    col: int
    rule: str
    code: str
    severity: Severity
    message: str

    def format(self) -> str:
        """Render as ``path:line:col: severity CODE [rule] message``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity.name.lower()} {self.code} "
            f"[{self.rule}] {self.message}"
        )

    @property
    def sort_key(self) -> tuple:
        """Stable ordering: by path, then position, then rule code."""
        return (self.path, self.line, self.col, self.code)
