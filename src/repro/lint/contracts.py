"""Opt-in runtime contracts for the DAOP engine substrate.

The static rules in :mod:`repro.lint.rules` catch what is decidable from
the AST; these validators check the dynamic invariants the paper states
in prose:

- **Timeline lane monotonicity** -- each resource (``gpu``/``cpu``/
  ``h2d``/``d2h``) executes its ops in submission order without overlap,
  and every op's ``end`` equals ``start + duration`` (the deterministic
  list-scheduling semantics all engines share).
- **Slot-budget conservation** -- an Algorithm-1 style swap frees the
  cold expert before uploading the hot one, so the number of
  GPU-resident experts never exceeds the calibrated slot budget.
- **Prefill-only migration** (SS IV-B) -- when
  ``decode_realloc_interval`` is ``None`` (the paper's configuration) no
  expert upload may happen after prefill completes.

Contracts are opt-in: wrap an engine with :class:`EngineContractGuard`
(tests use the ``engine_contracts`` fixture from ``conftest.py``) and
every violation raises :class:`ContractViolation` at the offending call,
with the engine restored to its unwrapped state via ``detach()``.
"""

from __future__ import annotations

from repro.hardware.timeline import RESOURCES, Timeline


class ContractViolation(AssertionError):
    """A runtime invariant of the engine substrate was broken."""


def validate_timeline(timeline: Timeline, tolerance: float = 1e-9) -> None:
    """Check per-lane event monotonicity of an executed timeline.

    Raises:
        ContractViolation: if a lane's ops overlap, run out of
            submission order, or an op's span disagrees with its
            duration.
    """
    for resource in RESOURCES:
        previous_end = 0.0
        for op in timeline.ops_on(resource):
            if op.duration < 0:
                raise ContractViolation(
                    f"op {op.index} ({op.label!r}) on {resource} has "
                    f"negative duration {op.duration}"
                )
            if op.start + tolerance < previous_end:
                raise ContractViolation(
                    f"op {op.index} ({op.label!r}) on {resource} starts "
                    f"at {op.start} before the lane is free at "
                    f"{previous_end}: lane ordering is not monotonic"
                )
            if abs(op.end - (op.start + op.duration)) > tolerance:
                raise ContractViolation(
                    f"op {op.index} ({op.label!r}) on {resource} spans "
                    f"[{op.start}, {op.end}] which disagrees with its "
                    f"duration {op.duration}"
                )
            previous_end = op.end


def validate_slot_budget(placement, max_slots: int) -> None:
    """Check that GPU-resident experts fit the calibrated slot budget.

    Raises:
        ContractViolation: if ``placement`` holds more GPU-resident
            experts than ``max_slots``.
    """
    resident = placement.gpu_count()
    if resident > max_slots:
        raise ContractViolation(
            f"slot budget violated: {resident} experts GPU-resident but "
            f"the calibrated budget is {max_slots}"
        )


class EngineContractGuard:
    """Wraps a live engine with runtime contract checks.

    Args:
        engine: any :class:`repro.core.engine.BaseEngine` instance.
        slot_budget: check GPU residency against the engine's initial
            placement budget after every expert upload.  Disable (or set
            ``slot_slack``) for scratch-streaming engines that upload
            before dropping.
        prefill_only: forbid expert uploads during decode.  ``None``
            (default) auto-enables exactly when the engine carries
            ``decode_realloc_interval=None`` -- the paper's DAOP
            configuration; caching baselines legitimately upload during
            decode and are not auto-guarded.
        check_timeline: validate lane monotonicity of the generated
            timeline after every ``generate()`` call.
        slot_slack: extra experts tolerated above the budget (for
            engines with transient upload-then-drop streaming).
    """

    _MISSING = object()

    def __init__(self, engine, slot_budget: bool = True,
                 prefill_only=None, check_timeline: bool = True,
                 slot_slack: int = 0) -> None:
        self.engine = engine
        if prefill_only is None:
            interval = getattr(engine, "decode_realloc_interval",
                               self._MISSING)
            prefill_only = interval is None
        self.prefill_only = prefill_only
        self.slot_budget = slot_budget
        self.check_timeline = check_timeline
        self.slot_slack = slot_slack
        self.phase = "idle"
        self._originals = {}

    # ---- lifecycle -----------------------------------------------------------

    def attach(self) -> "EngineContractGuard":
        """Install the contract wrappers on the engine instance."""
        if self._originals:
            return self
        self._wrap("generate", self._guarded_generate)
        self._wrap("_prefill", self._guarded_prefill)
        self._wrap("_upload_expert", self._guarded_upload)
        return self

    def detach(self) -> None:
        """Restore the engine's original unwrapped methods."""
        for name in list(self._originals):
            original = self._originals.pop(name)
            if original is self._MISSING:
                delattr(self.engine, name)
            else:
                setattr(self.engine, name, original)

    def __enter__(self) -> "EngineContractGuard":
        """Context-manager entry: attach the guard."""
        return self.attach()

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: detach the guard."""
        self.detach()

    def _wrap(self, name: str, wrapper) -> None:
        self._originals[name] = self.engine.__dict__.get(name,
                                                         self._MISSING)
        bound = getattr(self.engine, name)
        setattr(self.engine, name,
                lambda *args, **kwargs: wrapper(bound, *args, **kwargs))

    # ---- guarded methods -----------------------------------------------------

    def _guarded_generate(self, original, *args, **kwargs):
        self.phase = "prefill"
        try:
            result = original(*args, **kwargs)
        finally:
            self.phase = "idle"
        if self.check_timeline:
            validate_timeline(result.timeline)
        if self.slot_budget:
            validate_slot_budget(
                self.engine.placement,
                self.engine.initial_placement.gpu_count()
                + self.slot_slack,
            )
        return result

    def _guarded_prefill(self, original, *args, **kwargs):
        self.phase = "prefill"
        try:
            return original(*args, **kwargs)
        finally:
            self.phase = "decode"

    def _guarded_upload(self, original, *args, **kwargs):
        # The sequence state carries its own phase, which stays correct
        # when a scheduler interleaves several sequences (one may be in
        # decode while another is still prefilling); the guard-level
        # phase is the fallback for direct primitive calls.
        phase = self.phase
        if args:
            phase = getattr(args[0], "phase", phase)
        if self.prefill_only and phase == "decode":
            raise ContractViolation(
                f"engine '{self.engine.name}' uploaded an expert during "
                "decode, but migration is restricted to prefill "
                "(SS IV-B, decode_realloc_interval is None)"
            )
        op = original(*args, **kwargs)
        if self.slot_budget:
            validate_slot_budget(
                self.engine.placement,
                self.engine.initial_placement.gpu_count()
                + self.slot_slack,
            )
        return op
