"""Pluggable rule registry and per-file lint context for daoplint.

Rules are plain classes with a ``check(ctx)`` method; decorating them with
:func:`register` adds one instance to the global registry that the runner
iterates.  Each rule declares a kebab-case ``name`` (used in suppression
markers and ``--select``), a short ``code`` (``DET001`` style), a
``severity``, and a one-line ``description`` shown by ``--list-rules``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.diagnostics import Diagnostic, Severity


@dataclass(frozen=True)
class LintContext:
    """Everything a rule needs to check one parsed source file.

    Attributes:
        path: display path used in diagnostics (repo-relative when
            possible).
        rel: path parts relative to the ``repro`` package root, e.g.
            ``("core", "baselines", "fiddler.py")``; a bare ``(name,)``
            for files outside the package (test fixtures).
        tree: the parsed :mod:`ast` module.
        source: raw file contents.
    """

    path: str
    rel: tuple
    tree: ast.Module
    source: str

    @property
    def package(self) -> str:
        """Top-level subpackage ("core", ...) or the module stem for
        files sitting directly in the package root ("cli")."""
        if len(self.rel) == 1:
            name = self.rel[0]
            return name[:-3] if name.endswith(".py") else name
        return self.rel[0]

    @property
    def is_dunder_init(self) -> bool:
        """Whether this file is an ``__init__.py``."""
        return bool(self.rel) and self.rel[-1] == "__init__.py"

    def in_subpath(self, *parts: str) -> bool:
        """Whether the file lives under ``repro/<parts...>/``."""
        return self.rel[: len(parts)] == parts


class Rule:
    """Base class for daoplint rules."""

    name = "rule"
    code = "XXX000"
    severity = Severity.ERROR
    description = ""

    def check(self, ctx: LintContext):
        """Yield :class:`Diagnostic` objects for violations in ``ctx``."""
        raise NotImplementedError

    def diag(self, ctx: LintContext, node, message: str) -> Diagnostic:
        """Build a diagnostic anchored at an AST node (or (line, col))."""
        if isinstance(node, tuple):
            line, col = node
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0) + 1
        return Diagnostic(
            path=ctx.path, line=line, col=col, rule=self.name,
            code=self.code, severity=self.severity, message=message,
        )


_REGISTRY = {}


def register(cls):
    """Class decorator: instantiate the rule and add it to the registry."""
    instance = cls()
    if instance.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {instance.name!r}")
    _REGISTRY[instance.name] = instance
    return cls


def all_rules():
    """Every registered rule, ordered by code."""
    return sorted(_REGISTRY.values(), key=lambda rule: rule.code)


def get_rule(name: str) -> Rule:
    """Look up one rule by kebab-case name or code."""
    if name in _REGISTRY:
        return _REGISTRY[name]
    for rule in _REGISTRY.values():
        if rule.code == name:
            return rule
    raise KeyError(f"unknown rule {name!r}")


def dotted_name(node) -> str:
    """Flatten an ``ast.Attribute``/``ast.Name`` chain to ``a.b.c``.

    Returns an empty string when the chain is rooted in something other
    than a plain name (e.g. a call result), which no rule matches on.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""
