"""Downstream-task accuracy harness.

Protocol (see DESIGN.md substitution table): every task sample has a
*canonical* prompt and a topic-preserving *paraphrase* of it.  The
full-precision all-GPU :class:`~repro.core.baselines.official.OfficialEngine`
greedy-decodes the canonical prompt to produce the reference answer; the
engine under test greedy-decodes the paraphrased prompt and is scored
against that reference.  The paraphrase strength (a per-dataset constant)
sets the task's difficulty -- the official engine itself scores below
100 % -- and any routing approximation an engine makes (graceful
degradation, stale pre-calculated inputs, mispredicted experts) compounds
on top, exactly the degradation paper Tables V and VI measure.

Scoring the official engine under this harness measures the model's
paraphrase robustness, i.e. the "Official" rows of the paper's tables.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.baselines.official import OfficialEngine
from repro.core.engine import BaseEngine
from repro.eval.accuracy import exact_match, first_token_match
from repro.eval.rouge import rouge_1, rouge_2
from repro.hardware.platform import Platform
from repro.model.sampling import top_k_sample
from repro.model.zoo import ModelBundle
from repro.workloads.generator import SequenceGenerator
from repro.workloads.tasks import TaskSpec

#: Decoding configuration shared by the oracle and every engine under
#: test.  The sampler rng is re-seeded identically per sample, so two
#: engines producing identical logits generate identical answers and any
#: disagreement is attributable to input paraphrasing plus the engine's
#: routing approximations.
SAMPLE_TOP_K = 20
SAMPLE_TEMPERATURE = 0.8


@dataclass
class TaskResult:
    """Aggregate accuracy of one engine on one task."""

    task: str
    engine: str
    metric: str
    score: float
    rouge1: float | None = None
    rouge2: float | None = None
    n_samples: int = 0
    per_sample: list[float] = field(default_factory=list)


class AccuracyHarness:
    """Evaluates engines against the official oracle on synthetic tasks."""

    def __init__(self, bundle: ModelBundle, platform: Platform,
                 seed: int = 0) -> None:
        self.bundle = bundle
        self.platform = platform
        self.seed = seed
        self.official = OfficialEngine(bundle, platform)
        # (task name, sample idx) -> reference answer tokens.
        self._reference_cache: dict[tuple[str, int], np.ndarray] = {}

    def _generator(self, task: TaskSpec) -> SequenceGenerator:
        return SequenceGenerator(task.dataset, self.bundle.vocab,
                                 seed=self.seed)

    def _sampler(self, task: TaskSpec, sample_idx: int):
        """Deterministic per-sample stochastic sampler (shared seed)."""
        rng = np.random.default_rng(
            np.random.SeedSequence(
                [self.seed, zlib.crc32(task.name.encode()) & 0xFFFF,
                 sample_idx, 0x5A]
            )
        )
        return lambda logits: top_k_sample(
            logits, SAMPLE_TOP_K, rng, temperature=SAMPLE_TEMPERATURE
        )

    def reference_answer(self, task: TaskSpec, sample_idx: int,
                         generator: SequenceGenerator) -> np.ndarray:
        """Official answer on the canonical prompt (cached)."""
        key = (task.name, sample_idx)
        if key not in self._reference_cache:
            sequence = generator.sample_sequence(
                task.prompt_len, 0, sample_idx=sample_idx
            )
            result = self.official.generate(
                sequence.prompt_tokens, task.answer_len,
                sampler=self._sampler(task, sample_idx),
            )
            self._reference_cache[key] = result.tokens
        return self._reference_cache[key]

    def evaluate(self, engine: BaseEngine, task: TaskSpec,
                 n_samples: int | None = None) -> TaskResult:
        """Score one engine on one task."""
        n = n_samples or task.n_samples
        generator = self._generator(task)
        scores: list[float] = []
        r1s: list[float] = []
        r2s: list[float] = []
        for idx in range(n):
            sequence = generator.sample_sequence(
                task.prompt_len, 0, sample_idx=idx
            )
            reference = self.reference_answer(task, idx, generator)
            perturbed = generator.perturb_prompt(sequence)
            hypothesis = engine.generate(
                perturbed, task.answer_len,
                sampler=self._sampler(task, idx),
            ).tokens
            if task.metric == "first_token":
                scores.append(first_token_match(hypothesis, reference))
            elif task.metric == "exact_match":
                scores.append(exact_match(hypothesis, reference))
            elif task.metric == "rouge":
                r1s.append(rouge_1(hypothesis, reference))
                r2s.append(rouge_2(hypothesis, reference))
                scores.append(r1s[-1])
            else:  # pragma: no cover - TaskSpec validates the metric
                raise ValueError(f"unknown metric {task.metric}")
        return TaskResult(
            task=task.name,
            engine=engine.name,
            metric=task.metric,
            score=float(np.mean(scores)) if scores else 0.0,
            rouge1=float(np.mean(r1s)) if r1s else None,
            rouge2=float(np.mean(r2s)) if r2s else None,
            n_samples=n,
            per_sample=scores,
        )

    def evaluate_official(self, task: TaskSpec,
                          n_samples: int | None = None) -> TaskResult:
        """The 'Official' table rows: the oracle scored on paraphrases."""
        return self.evaluate(self.official, task, n_samples=n_samples)
