"""Rouge-N scoring over token sequences.

The paper reports Rouge-1 and Rouge-2 F1 for TruthfulQA generation
(Table VI).  We score token-id sequences directly; with the toy tokenizer
one token is one "word", so this is the standard Rouge-N computation.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence


def _ngrams(tokens: Sequence[int], n: int) -> Counter:
    return Counter(
        tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)
    )


def rouge_n(hypothesis: Sequence[int], reference: Sequence[int],
            n: int) -> float:
    """Rouge-N F1 between a hypothesis and a reference token sequence."""
    if n < 1:
        raise ValueError("n must be positive")
    hyp = _ngrams(list(hypothesis), n)
    ref = _ngrams(list(reference), n)
    overlap = sum((hyp & ref).values())
    hyp_total = sum(hyp.values())
    ref_total = sum(ref.values())
    if hyp_total == 0 or ref_total == 0:
        return 1.0 if hyp_total == ref_total else 0.0
    precision = overlap / hyp_total
    recall = overlap / ref_total
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def rouge_1(hypothesis: Sequence[int], reference: Sequence[int]) -> float:
    """Rouge-1 (unigram) F1."""
    return rouge_n(hypothesis, reference, 1)


def rouge_2(hypothesis: Sequence[int], reference: Sequence[int]) -> float:
    """Rouge-2 (bigram) F1."""
    return rouge_n(hypothesis, reference, 2)
