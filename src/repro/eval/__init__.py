"""Downstream-task accuracy evaluation."""

from repro.eval.accuracy import (
    exact_match,
    first_token_match,
    prefix_agreement,
    token_agreement,
)
from repro.eval.harness import AccuracyHarness, TaskResult
from repro.eval.significance import (
    ConfidenceInterval,
    bootstrap_mean,
    paired_difference,
    significantly_below,
)
from repro.eval.rouge import rouge_1, rouge_2, rouge_n

__all__ = [
    "exact_match",
    "first_token_match",
    "prefix_agreement",
    "token_agreement",
    "AccuracyHarness",
    "TaskResult",
    "ConfidenceInterval",
    "bootstrap_mean",
    "paired_difference",
    "significantly_below",
    "rouge_1",
    "rouge_2",
    "rouge_n",
]
