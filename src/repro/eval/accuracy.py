"""Token-sequence accuracy metrics."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def exact_match(hypothesis: Sequence[int], reference: Sequence[int]) -> float:
    """1.0 iff the two token sequences are identical."""
    hyp = np.asarray(list(hypothesis))
    ref = np.asarray(list(reference))
    if hyp.shape != ref.shape:
        return 0.0
    return float(np.array_equal(hyp, ref))


def first_token_match(hypothesis: Sequence[int],
                      reference: Sequence[int]) -> float:
    """1.0 iff the first generated tokens agree (paper Table V protocol)."""
    hyp = list(hypothesis)
    ref = list(reference)
    if not hyp or not ref:
        return 0.0
    return float(hyp[0] == ref[0])


def token_agreement(hypothesis: Sequence[int],
                    reference: Sequence[int]) -> float:
    """Positionwise agreement rate over the overlapping span."""
    hyp = list(hypothesis)
    ref = list(reference)
    span = min(len(hyp), len(ref))
    if span == 0:
        return 0.0
    matches = sum(1 for a, b in zip(hyp[:span], ref[:span]) if a == b)
    return matches / span


def prefix_agreement(hypothesis: Sequence[int],
                     reference: Sequence[int]) -> float:
    """Length of the common prefix divided by the reference length."""
    hyp = list(hypothesis)
    ref = list(reference)
    if not ref:
        return 1.0 if not hyp else 0.0
    common = 0
    for a, b in zip(hyp, ref):
        if a != b:
            break
        common += 1
    return common / len(ref)
