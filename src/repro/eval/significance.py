"""Bootstrap confidence intervals for accuracy comparisons.

The paper's Tables V/VI compare per-task accuracies of approximated
engines against the official model; with finite sample counts some
differences are noise.  These helpers quantify that: a percentile
bootstrap over per-sample scores yields confidence intervals for a single
engine's score and for the paired difference between two engines
evaluated on the same samples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a two-sided bootstrap interval."""

    mean: float
    lower: float
    upper: float
    confidence: float

    def contains(self, value: float) -> bool:
        """Whether a value lies inside the interval."""
        return self.lower <= value <= self.upper

    @property
    def width(self) -> float:
        """Interval width."""
        return self.upper - self.lower


def bootstrap_mean(scores, confidence: float = 0.95,
                   n_resamples: int = 2000,
                   seed: int = 0) -> ConfidenceInterval:
    """Percentile-bootstrap CI of a score list's mean."""
    scores = np.asarray(list(scores), dtype=np.float64)
    if scores.size == 0:
        raise ValueError("scores must be non-empty")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, scores.size, size=(n_resamples, scores.size))
    means = scores[idx].mean(axis=1)
    alpha = 100.0 * (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        mean=float(scores.mean()),
        lower=float(np.percentile(means, alpha)),
        upper=float(np.percentile(means, 100.0 - alpha)),
        confidence=confidence,
    )


def paired_difference(scores_a, scores_b, confidence: float = 0.95,
                      n_resamples: int = 2000,
                      seed: int = 0) -> ConfidenceInterval:
    """Bootstrap CI of ``mean(a - b)`` over paired per-sample scores.

    Both engines must have been evaluated on the same samples (the
    harness guarantees this: ``per_sample[i]`` corresponds to
    ``sample_idx=i``).  A CI excluding zero indicates a significant
    accuracy difference at the chosen confidence.
    """
    a = np.asarray(list(scores_a), dtype=np.float64)
    b = np.asarray(list(scores_b), dtype=np.float64)
    if a.shape != b.shape or a.size == 0:
        raise ValueError("paired score lists must match and be non-empty")
    return bootstrap_mean(a - b, confidence=confidence,
                          n_resamples=n_resamples, seed=seed)


def significantly_below(scores_a, scores_b,
                        confidence: float = 0.95) -> bool:
    """True when engine A scores significantly below engine B."""
    ci = paired_difference(scores_a, scores_b, confidence=confidence)
    return ci.upper < 0.0
